(** Multicore labeling: the paper's DP, level-parallel on OCaml 5
    domains.

    A node's optimal label depends only on nodes at strictly smaller
    {!Subject.levels}, so each topological level is an independent
    front: the sweep runs level by level, fanning the nodes of a
    level across a domain pool with work-stealing chunks and a
    spawn/join barrier between levels. Labels, best matches, netlist
    and delay are {e bit-identical} to the sequential {!Mapper} —
    each label is a pure function of lower-level labels and every
    node is written by exactly one worker — which the test suite
    asserts for 1, 2 and 4 domains.

    Each worker owns a private {!Matchdb.cache}; aggregate hit/miss
    counters are summed into the returned {!Mapper.stats} (the split
    between workers depends on the stealing schedule, the totals'
    invariants do not). *)

open Dagmap_subject

type par_stats = {
  domains : int;            (** domains actually used (>= 1) *)
  levels : int;             (** topological levels swept *)
  widest_level : int;       (** nodes in the widest level *)
  level_seconds : float array;  (** wall-clock per level *)
}

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val label :
  ?jobs:int ->
  ?cache:bool ->
  ?pi_arrival:(int -> float) ->
  Mapper.mode ->
  Matchdb.t ->
  Subject.t ->
  float array
  * Matcher.mtch option array
  * (int * int * int * int)
  * par_stats
(** Parallel labeling pass. [jobs] defaults to {!recommended_jobs};
    [cache] (default true) enables per-worker match caches. The int
    quadruple is (matches tried, cache hits, cache misses, cache
    lookups). Raises {!Mapper.Unmappable} exactly when the
    sequential pass would. *)

val map :
  ?jobs:int ->
  ?cache:bool ->
  Mapper.mode ->
  Matchdb.t ->
  Subject.t ->
  Mapper.result * par_stats
(** Parallel labeling + (sequential, output-driven) cover
    construction. The {!Mapper.result} is bit-identical to
    [Mapper.map mode db g]; timings in [run] are wall-clock rather
    than CPU seconds. *)
