open Dagmap_logic
open Dagmap_subject

type iarr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  fanin0 : iarr;
  fanin1 : iarr;
  n : int;
  num_pis : int;
  pi_nodes : int array;
  pi_names : string array;
  outputs : (string * int) array;
  const_outputs : (string * bool) list;
  n_latches : int;
  mutable levels_memo : int array option;
}

let num_nodes a = a.n

let is_pi a i = Bigarray.Array1.unsafe_get a.fanin0 i < 0

let fanin0 a i = Bigarray.Array1.get a.fanin0 i
let fanin1 a i = Bigarray.Array1.get a.fanin1 i

let kind a i =
  let f0 = Bigarray.Array1.get a.fanin0 i in
  if f0 < 0 then Subject.Spi
  else
    let f1 = Bigarray.Array1.get a.fanin1 i in
    if f1 < 0 then Subject.Sinv f0 else Subject.Snand (f0, f1)

let mem_bytes a = 2 * 8 * a.n

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  type graph = t

  type t = {
    mutable f0 : int array;
    mutable f1 : int array;
    mutable count : int;
    mutable pi_ids_rev : int list;
    mutable pi_names_rev : string list;
    mutable outs_rev : (string * int) list;
    mutable consts_rev : (string * bool) list;
    (* Structural hash on packed int keys: NAND(x, y) with x <= y is
       [x lsl 31 lor y]; INV(x) is [-(x + 1)]. Node ids stay below
       2^31, so NAND keys are distinct non-negative ints and INV keys
       distinct negative ints. *)
    hash : (int, int) Hashtbl.t;
  }

  let create ?(hint = 1024) () =
    let hint = max hint 16 in
    { f0 = Array.make hint 0;
      f1 = Array.make hint 0;
      count = 0;
      pi_ids_rev = [];
      pi_names_rev = [];
      outs_rev = [];
      consts_rev = [];
      hash = Hashtbl.create (max 64 (hint / 4)) }

  let max_id = (1 lsl 31) - 1

  let push b f0 f1 =
    let id = b.count in
    if id > max_id then invalid_arg "Arena.Builder: node id overflow";
    if id = Array.length b.f0 then begin
      let cap = 2 * id in
      let g0 = Array.make cap 0 and g1 = Array.make cap 0 in
      Array.blit b.f0 0 g0 0 id;
      Array.blit b.f1 0 g1 0 id;
      b.f0 <- g0;
      b.f1 <- g1
    end;
    b.f0.(id) <- f0;
    b.f1.(id) <- f1;
    b.count <- id + 1;
    id

  let pi b name =
    b.pi_names_rev <- name :: b.pi_names_rev;
    let id = push b (-1) (-1) in
    b.pi_ids_rev <- id :: b.pi_ids_rev;
    id

  let check b i =
    if i < 0 || i >= b.count then invalid_arg "Arena.Builder: bad node id"

  let nand_key x y = (x lsl 31) lor y
  let inv_key x = -(x + 1)

  let hashed b key f0 f1 =
    match Hashtbl.find_opt b.hash key with
    | Some id -> id
    | None ->
      let id = push b f0 f1 in
      Hashtbl.add b.hash key id;
      id

  let inv b x =
    check b x;
    (* Inverter-pair cancellation, mirroring Subject.Builder.inv. *)
    if b.f0.(x) >= 0 && b.f1.(x) < 0 then b.f0.(x)
    else hashed b (inv_key x) x (-1)

  (* nand(x, x) folds to inv x so every node stays matchable under the
     one-to-one match class — same rule as Subject.Builder.nand. *)
  let nand b x y =
    check b x;
    check b y;
    if x = y then inv b x
    else
      let x, y = if x <= y then (x, y) else (y, x) in
      hashed b (nand_key x y) x y

  let raw_nand b x y =
    check b x;
    check b y;
    push b x y

  let raw_inv b x =
    check b x;
    push b x (-1)

  let output b name node =
    check b node;
    b.outs_rev <- (name, node) :: b.outs_rev

  let const_output b name value = b.consts_rev <- (name, value) :: b.consts_rev

  let finish ?(n_latches = 0) b =
    let n = b.count in
    let fanin0 = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
    let fanin1 = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set fanin0 i b.f0.(i);
      Bigarray.Array1.unsafe_set fanin1 i b.f1.(i)
    done;
    let pi_nodes = Array.of_list (List.rev b.pi_ids_rev) in
    { fanin0;
      fanin1;
      n;
      num_pis = Array.length pi_nodes;
      pi_nodes;
      pi_names = Array.of_list (List.rev b.pi_names_rev);
      outputs = Array.of_list (List.rev b.outs_rev);
      const_outputs = List.rev b.consts_rev;
      n_latches;
      levels_memo = None }
end

(* ------------------------------------------------------------------ *)
(* Conversion boundary                                                 *)
(* ------------------------------------------------------------------ *)

let of_subject (g : Subject.t) =
  let n = Subject.num_nodes g in
  let fanin0 = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  let fanin1 = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  let pis = ref [] in
  let npis = ref 0 in
  for i = n - 1 downto 0 do
    match g.Subject.kinds.(i) with
    | Subject.Spi ->
      Bigarray.Array1.unsafe_set fanin0 i (-1);
      Bigarray.Array1.unsafe_set fanin1 i (-1);
      pis := i :: !pis;
      incr npis
    | Subject.Sinv x ->
      Bigarray.Array1.unsafe_set fanin0 i x;
      Bigarray.Array1.unsafe_set fanin1 i (-1)
    | Subject.Snand (x, y) ->
      Bigarray.Array1.unsafe_set fanin0 i x;
      Bigarray.Array1.unsafe_set fanin1 i y
  done;
  let pi_nodes = Array.of_list !pis in
  { fanin0;
    fanin1;
    n;
    num_pis = !npis;
    pi_nodes;
    pi_names = Array.map (fun i -> g.Subject.names.(i)) pi_nodes;
    outputs =
      Array.of_list
        (List.map
           (fun o -> (o.Subject.out_name, o.Subject.out_node))
           g.Subject.outputs);
    const_outputs = g.Subject.const_outputs;
    n_latches = g.Subject.n_latches;
    levels_memo = None }

let to_subject a =
  let kinds = Array.init a.n (fun i -> kind a i) in
  (* Subject.Builder names every gate "g<id>"; reproduce that so the
     round-trip is an exact record equality on builder-made graphs. *)
  let names = Array.init a.n (fun i -> Printf.sprintf "g%d" i) in
  Array.iteri (fun o node -> names.(node) <- a.pi_names.(o)) a.pi_nodes;
  Subject.of_parts ~kinds ~names
    ~outputs:
      (Array.to_list
         (Array.map
            (fun (name, node) ->
              { Subject.out_name = name; Subject.out_node = node })
            a.outputs))
    ~const_outputs:a.const_outputs ~num_pis:a.num_pis ~n_latches:a.n_latches

module Decompose = Subject.Decompose (struct
  type b = Builder.t

  let pi = Builder.pi
  let inv = Builder.inv
  let nand = Builder.nand
  let output = Builder.output
  let const_output = Builder.const_output
end)

let of_network ?style net =
  let b = Builder.create ~hint:(4 * Network.num_nodes net) () in
  Decompose.run ?style b net;
  Builder.finish ~n_latches:(List.length (Network.latches net)) b

(* ------------------------------------------------------------------ *)
(* Derived per-node arrays                                             *)
(* ------------------------------------------------------------------ *)

(* The arena is immutable once built, so the O(n) level sweep runs at
   most once per graph and is shared by [level_ranges], [by_level],
   [depth] and every labeler — a single map used to walk the graph
   three times (levels, then level_ranges, then depth) before the
   first match was even tried. The memo write is a single pointer
   store of an array that is never mutated afterwards, so a racing
   recompute from another domain is redundant work, not a hazard. *)
let levels a =
  match a.levels_memo with
  | Some lv -> lv
  | None ->
    let lv = Array.make a.n 0 in
    for i = 0 to a.n - 1 do
      let f0 = Bigarray.Array1.unsafe_get a.fanin0 i in
      if f0 >= 0 then begin
        let f1 = Bigarray.Array1.unsafe_get a.fanin1 i in
        let below =
          if f1 < 0 then Array.unsafe_get lv f0
          else max (Array.unsafe_get lv f0) (Array.unsafe_get lv f1)
        in
        Array.unsafe_set lv i (below + 1)
      end
    done;
    a.levels_memo <- Some lv;
    lv

let fanout_counts a =
  let counts = Array.make a.n 0 in
  for i = 0 to a.n - 1 do
    let f0 = Bigarray.Array1.unsafe_get a.fanin0 i in
    if f0 >= 0 then begin
      counts.(f0) <- counts.(f0) + 1;
      let f1 = Bigarray.Array1.unsafe_get a.fanin1 i in
      if f1 >= 0 then counts.(f1) <- counts.(f1) + 1
    end
  done;
  Array.iter (fun (_, node) -> counts.(node) <- counts.(node) + 1) a.outputs;
  counts

let depth a =
  let lv = levels a in
  Array.fold_left (fun acc (_, node) -> max acc lv.(node)) 0 a.outputs

let level_ranges a =
  let lv = levels a in
  let maxl = Array.fold_left max 0 lv in
  let starts = Array.make (maxl + 2) 0 in
  Array.iter (fun l -> starts.(l + 1) <- starts.(l + 1) + 1) lv;
  for l = 1 to maxl + 1 do
    starts.(l) <- starts.(l) + starts.(l - 1)
  done;
  let order = Array.make a.n 0 in
  let fill = Array.copy starts in
  (* Counting sort in node order: stable, so ids ascend within each
     level — the same order Subject.by_level produces. *)
  Array.iteri
    (fun node l ->
      order.(fill.(l)) <- node;
      fill.(l) <- fill.(l) + 1)
    lv;
  (order, starts)

let by_level a =
  let order, starts = level_ranges a in
  Array.init
    (Array.length starts - 1)
    (fun l -> Array.sub order starts.(l) (starts.(l + 1) - starts.(l)))

let stats a =
  let nands = ref 0 and invs = ref 0 in
  for i = 0 to a.n - 1 do
    let f0 = Bigarray.Array1.unsafe_get a.fanin0 i in
    if f0 >= 0 then
      if Bigarray.Array1.unsafe_get a.fanin1 i >= 0 then incr nands
      else incr invs
  done;
  Printf.sprintf "arena: pi=%d out=%d nand=%d inv=%d depth=%d (%d KiB off-heap)"
    a.num_pis (Array.length a.outputs) !nands !invs (depth a)
    (mem_bytes a / 1024)
