(** A gate library prepared for fast match enumeration.

    Patterns are bucketed by the structural signature of their top
    two levels (root kind and child categories) and filtered by
    depth, so that at each subject node only plausibly-matching
    patterns are attempted. This keeps the labeling pass close to the
    O(s p) bound of the paper with a small effective [p].

    On top of the buckets sits an optional {e match cache}: every
    binding the matcher makes lands within [max pattern depth] edges
    of the root, so a node's match set is determined by its
    depth-bounded cone up to isomorphism. The cache keys each node by
    a canonical signature of that cone (the structural analogue of
    the NPN-canonical cut classes used by Boolean matchers) and
    replays stored match sets through the isomorphism, skipping the
    backtracking search for the repeated local shapes that dominate
    ISCAS-like circuits. Cached and uncached enumeration return
    identical match lists in identical order — the test suite asserts
    this — so caching never changes mapping results. *)

open Dagmap_genlib
open Dagmap_subject

type t

val prepare : Libraries.t -> t

val library : t -> Libraries.t

val boolean : t -> Boolean_match.t
(** The {!Boolean_match} index over the same library (supergates
    included when the library was augmented), built lazily on first
    use and memoized — the structural and cut-based mappers share one
    permutation-variant table per prepared library. *)

val num_patterns : t -> int

val max_depth : t -> int
(** Deepest pattern in the library, in edges; bounds every match
    cone. *)

val inv_bucket : t -> int -> Pattern.t list
(** INV-rooted patterns whose child category index is the argument
    (0 = leaf, 1 = inv, 2 = nand), in enumeration order. Exposed for
    the arena-native enumerator in {!Arena_map}, which must replay
    the exact bucket iteration order of {!for_each_node_match}. *)

val nand_bucket : t -> int -> int -> Pattern.t list
(** NAND-rooted patterns bucketed by the unordered pair of child
    category indices, [lo <= hi]. *)

type cache
(** A match cache. Lookups are not thread-safe — the signature
    scratch state belongs to one domain at a time, so the parallel
    labeler creates one cache per worker — but the hit/miss/lookup
    counters are {!Dagmap_obs.Metrics} atomics: reading them from
    another domain, and the process-global aggregate counters
    (["matchdb.cache.lookups"/"hits"/"misses"] in the metrics
    registry) that every cache feeds concurrently, are exact.
    Creating a cache is cheap; hit rate grows with the number of
    nodes looked up through the same cache. *)

val create_cache : t -> cache

val cache_hits : cache -> int
val cache_misses : cache -> int
val cache_lookups : cache -> int
(** Counters satisfy
    [cache_lookups c = cache_hits c + cache_misses c] — also across
    domains on the global registry aggregates, since every bump is
    atomic; PI nodes are
    not counted (they have no matches). A cache that keeps missing
    (shape-diverse subjects, e.g. seeded random logic) retires
    itself after a probation period — later lookups bypass it and
    are not counted — so caching never costs more than a bounded
    constant on cache-hostile inputs. *)

val cache_retired : cache -> bool
(** Whether the cache has retired itself (later lookups bypass it). *)

val reset_counters : cache -> unit
(** Zero the hit/miss/lookup counters without touching the stored
    entries, so a cache shared across several {!Mapper} runs in one
    process reports per-run statistics (the second run then starts
    warm: typically all hits). Resetting restarts the retirement
    probation; an already-retired cache stays retired and keeps
    reporting zero activity. *)

val for_each_node_match :
  ?cache:cache ->
  t ->
  Matcher.match_class ->
  Subject.t ->
  fanouts:int array ->
  levels:int array ->
  int ->
  (Matcher.mtch -> unit) ->
  unit
(** Enumerate every match of every library pattern rooted at the
    given subject node. [levels] must be [Subject.levels g]. The
    callback must not re-enter the same [cache] (the mapper's
    callbacks never do). *)

val node_matches :
  ?cache:cache ->
  t ->
  Matcher.match_class ->
  Subject.t ->
  fanouts:int array ->
  levels:int array ->
  int ->
  Matcher.mtch list
