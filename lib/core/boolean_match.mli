(** Boolean matching of cut functions against a gate library.

    The library is preprocessed once: for every gate of bounded
    arity, every input-permutation variant of its function is stored
    in a hash table keyed directly by the truth table. A cut then
    matches by a single lookup — matching is exact on the function,
    independent of how the subject graph happens to be decomposed
    (the key robustness advantage over structural matching).

    Supergates need no special ingestion path: {!Dagmap_super}
    composes each supergate into an ordinary [Gate.t] whose [func] is
    the composed truth table and whose pin delays carry the fusion
    discount, and [Superlib.augment] appends them to the base
    library's gate list — so [prepare] on an augmented library indexes
    them exactly like primitive cells, fused delays and all
    ({!num_super_entries} reports how many made it in). The prepared
    index is shared with the structural side through
    {!Matchdb.boolean}: one table per library serves the boxed cut
    mapper, the arena cut enumerator and every bench/CLI consumer.

    Scope: permutation (P) equivalence only. Input negations are not
    absorbed into matches (they would need inverters on the wires);
    NAND2-INV subject graphs expose both polarities as nodes, so the
    practical loss is small. *)

open Dagmap_logic
open Dagmap_genlib

type entry = {
  gate : Gate.t;
  pin_of_input : int array;
  (** [pin_of_input.(j)] is the gate pin to which the [j]-th cut
      input connects *)
}

type t

val prepare : ?max_arity:int -> Libraries.t -> t
(** Index all gates with at most [max_arity] (default 6) pins. *)

val lookup : t -> Truth.t -> entry list
(** All gates realizing exactly this function of [num_vars] inputs. *)

val num_entries : t -> int

val num_super_entries : t -> int
(** How many indexed entries are supergate wirings. *)

val arity_histogram : t -> (int * int) list
(** Indexed functions per arity (for reporting). *)

val max_arity : t -> int
(** Largest indexed arity (mappers clamp their cut width to this:
    wider cuts can never match and would crowd out useful ones). *)
