(** Flat struct-of-arrays subject arena.

    The record-per-node [Subject.t] spends million-node traversals in
    pointer-chasing and allocator pressure: every [Snand]/[Sinv] kind
    is a boxed variant, and structural hashing keys on those boxes.
    The arena stores the same graph as two off-heap int vectors
    (node = index), so labeling sweeps are cache-friendly int reads
    the GC never scans, and structural hashing keys on packed ints.

    Encoding (one int pair per node, [-1] as the sentinel):

    {v
      fanin0   fanin1    node kind
      ------   ------    ---------
        -1       -1      PI (or latch output)
        x >= 0   -1      INV(x)
        x >= 0   y >= 0  NAND(x, y), x <= y for hashed nodes
    v}

    Fanins always point at strictly smaller indices, so index order is
    a topological order — the same invariant [Subject.Builder]
    maintains. [of_subject]/[to_subject] are exact inverses on graphs
    produced by [Subject.Builder] (node-for-node, name-for-name), which
    keeps [Network]/[Netlist] and the whole [lib/check] stack working
    unchanged as a thin conversion boundary. *)

open Dagmap_logic
open Dagmap_subject

type iarr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  fanin0 : iarr;                 (** per-node first fanin / PI sentinel *)
  fanin1 : iarr;                 (** per-node second fanin / INV sentinel *)
  n : int;                       (** number of nodes *)
  num_pis : int;
  pi_nodes : int array;          (** arena ids of the PIs, in PI order *)
  pi_names : string array;       (** names parallel to [pi_nodes] *)
  outputs : (string * int) array;(** POs then latch pseudo-outputs *)
  const_outputs : (string * bool) list;
  n_latches : int;
  mutable levels_memo : int array option;
      (** memoized {!levels} result — the graph is immutable once
          built, so the O(n) level sweep runs at most once and is
          shared by [level_ranges]/[by_level]/[depth] (private record:
          only [Arena.levels] itself writes it) *)
}

val num_nodes : t -> int
val is_pi : t -> int -> bool
val fanin0 : t -> int -> int
val fanin1 : t -> int -> int

val kind : t -> int -> Subject.kind
(** Boxed view of one node (conversion and test convenience; hot loops
    read the fanin arrays directly). *)

val mem_bytes : t -> int
(** Off-heap bytes held by the fanin vectors. *)

val of_subject : Subject.t -> t
(** Node-for-node copy (including any [raw_nand]/[raw_inv]
    duplicates — no re-hashing). *)

val to_subject : t -> Subject.t
(** Inverse of {!of_subject}; gate names are synthesized as ["g<id>"],
    exactly as [Subject.Builder] names them. *)

val of_network : ?style:Subject.style -> Network.t -> t
(** NAND2-INV decomposition straight into the arena, via the same
    [Subject.Decompose] walk as [Subject.of_network] — the resulting
    arena is structurally identical to
    [of_subject (Subject.of_network ?style net)]. *)

val levels : t -> int array
(** Unit-delay level per node (PIs at 0); computed by a single
    forward sweep on first use and memoized — repeated calls (and
    {!level_ranges}/{!by_level}/{!depth}, which all start from it)
    share one array. Callers must not mutate the result. *)

val fanout_counts : t -> int array
(** Fanout per node; each output reference counts once. *)

val depth : t -> int
(** Max level over output drivers. *)

val level_ranges : t -> int array * int array
(** [(order, starts)]: [order] is a permutation of node ids sorted by
    (level, id); level [l] occupies [order.(starts.(l)) ..
    order.(starts.(l+1) - 1)]. [starts] has [depth_overall + 2]
    entries. These dense index ranges are the parallelization fronts
    as contiguous slices — no per-level node lists. *)

val by_level : t -> int array array
(** Same grouping as [Subject.by_level], built from {!level_ranges}. *)

val stats : t -> string

(** Arena builder: same semantics as [Subject.Builder] (structural
    hashing with commutative NAND, [nand x x] folding to [inv x],
    inverter-pair cancellation, raw variants) but hashing on packed
    int keys instead of boxed kinds. *)
module Builder : sig
  type graph = t
  type t

  val create : ?hint:int -> unit -> t
  (** [hint] pre-sizes the node vectors (default 1024). *)

  val pi : t -> string -> int
  val nand : t -> int -> int -> int
  val inv : t -> int -> int
  val raw_nand : t -> int -> int -> int
  val raw_inv : t -> int -> int
  val output : t -> string -> int -> unit
  val const_output : t -> string -> bool -> unit
  val finish : ?n_latches:int -> t -> graph
end
