(** Arena-native mapping core: the paper's labeling DP and cover
    construction running directly on the flat {!Arena} fanin vectors.

    This is an independent reimplementation of
    {!Matcher}/{!Matchdb}/{!Mapper} over int indices instead of boxed
    [Subject.kind] values — no variant allocation in the hot loop,
    arrival labels in an off-heap float vector, match enumeration
    reading two int loads per node. It is required to be
    {e bit-identical} to the legacy path: same labels, same best
    matches (physically the same patterns, equal pins and covered
    sets), same cover netlist, same matches-tried counts, with and
    without the match cache, in every mode. [test/test_arena.ml]
    enforces this across the full mode x jobs x cache x library
    matrix; any intentional change to one side must land on both. *)

open Dagmap_subject

type labels = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type cache
(** Canonical-signature match cache over arena indices — the port of
    {!Matchdb.cache} with the same tuning (cone budget, probation,
    self-retirement threshold). Not thread-safe: one cache per
    domain, exactly like the legacy caches in {!Parmap}. *)

val create_cache : unit -> cache

val cache_hits : cache -> int
val cache_misses : cache -> int

val cache_lookups : cache -> int
(** Conservation invariant as for {!Matchdb}:
    [cache_lookups c = cache_hits c + cache_misses c]. *)

val label_node :
  ?cache:cache ->
  Matcher.match_class ->
  Matchdb.t ->
  Arena.t ->
  fanouts:int array ->
  levels:int array ->
  labels:labels ->
  best:Matcher.mtch option array ->
  int ->
  int * int
(** The DP kernel for one NAND/INV arena node; mirrors
    {!Mapper.label_node} (fills [labels.{node}] and [best.(node)],
    returns [(matches tried, supergate matches tried)], raises
    {!Mapper.Unmappable} when no match exists). Reads only
    strictly-lower-level entries of [labels], so calls within one
    topological level are independent — the arena-parallel labeler in
    {!Parmap} relies on exactly this. Do not call on a PI node. *)

val label :
  ?pi_arrival:(int -> float) ->
  ?cache:bool ->
  Mapper.mode ->
  Matchdb.t ->
  Arena.t ->
  labels * Matcher.mtch option array * (int * int)
(** Labeling pass; mirrors {!Mapper.label} ([cache] here is a flag —
    the arena cache is created internally). Raises
    {!Mapper.Unmappable} as the legacy pass does. *)

val cover : Arena.t -> subject:Subject.t -> Matcher.mtch option array -> Netlist.t
(** Cover construction from a completed best-match array. [subject]
    must be the boxed view of the arena (it becomes
    [Netlist.source]). *)

val map :
  ?cache:bool -> ?subject:Subject.t -> Mapper.mode -> Matchdb.t -> Arena.t ->
  Mapper.result
(** End-to-end arena mapping, returning a plain {!Mapper.result} so
    every downstream consumer (STA, [lib/check], bench, reports)
    works unchanged. [subject] avoids a redundant {!Arena.to_subject}
    when the caller already holds the boxed view; it must describe
    the same graph. *)
