open Dagmap_subject
open Dagmap_obs

(* Level-parallel labeling.

   The labeling DP is a topological-order recurrence, but a node's
   label depends only on nodes at strictly smaller levels
   (Subject.levels): within one level every Mapper.label_node call is
   independent. So we sweep the levels in order and fan each level's
   nodes across a pool of domains. Determinism comes for free from
   the dependency structure, not from the schedule: each node's label
   is a pure function of lower-level labels, every node is written by
   exactly one worker, and the level barrier makes lower levels
   visible before anyone reads them — so labels and best matches are
   bit-identical to the sequential pass no matter how the
   work-stealing interleaves.

   Match caches are per-worker (Matchdb.cache is not thread-safe);
   cached and uncached lookups return identical match lists, so the
   caches do not perturb determinism either — only the hit/miss split
   across workers varies run to run. *)

type par_stats = {
  domains : int;
  levels : int;
  widest_level : int;
  level_seconds : float array;
  parallel_levels : int;
  chunks : int;
}

let recommended_jobs () = Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Persistent domain pool                                              *)
(* ------------------------------------------------------------------ *)

(* Deep circuits have hundreds of levels; spawning domains per level
   would drown the matching work in spawn latency. The pool keeps
   [size] worker domains alive for the whole sweep and releases each
   level through a generation counter + condition variable; the
   caller doubles as the last worker. Tasks must not raise (the
   labeler traps exceptions into an Atomic and re-raises after the
   barrier). *)
type pool = {
  size : int;                        (* worker domains, caller excluded *)
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  idle : Condition.t;
  mutable task : (int -> unit) option;
  mutable generation : int;
  mutable active : int;
  mutable queue : (unit -> unit) Queue.t;  (* service-mode jobs *)
  mutable running : int;                   (* service-mode jobs in flight *)
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
}

(* A worker serves two request kinds over one condition variable: the
   barrier protocol of run_pool (a generation bump releases one task
   per worker) and the task-queue protocol of submit (independent
   jobs, any worker). Queued jobs take priority; in practice a pool is
   dedicated to one protocol for its lifetime (labeling uses the
   barrier, the techmapd daemon uses the queue). *)
let worker pool w =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.mutex;
    while
      (not pool.shutdown)
      && pool.generation = !seen
      && Queue.is_empty pool.queue
    do
      Condition.wait pool.start pool.mutex
    done;
    if pool.shutdown then Mutex.unlock pool.mutex
    else if not (Queue.is_empty pool.queue) then begin
      let job = Queue.pop pool.queue in
      pool.running <- pool.running + 1;
      Mutex.unlock pool.mutex;
      (* Job isolation: a raising job must never take the worker (and
         with it the whole pool) down. Submitters that care about the
         outcome trap it inside the job closure. *)
      (try job () with _ -> ());
      Mutex.lock pool.mutex;
      pool.running <- pool.running - 1;
      if pool.running = 0 && Queue.is_empty pool.queue then
        Condition.broadcast pool.idle;
      Mutex.unlock pool.mutex;
      loop ()
    end
    else begin
      seen := pool.generation;
      let task = Option.get pool.task in
      Mutex.unlock pool.mutex;
      task w;
      Mutex.lock pool.mutex;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.finished;
      Mutex.unlock pool.mutex;
      loop ()
    end
  in
  loop ()

let make_pool size =
  let pool =
    { size; mutex = Mutex.create (); start = Condition.create ();
      finished = Condition.create (); idle = Condition.create ();
      task = None; generation = 0; active = 0; queue = Queue.create ();
      running = 0; shutdown = false; domains = [] }
  in
  (* Spawn one at a time, keeping every live domain reachable from
     pool.domains, so a mid-way spawn failure (domain limit) can shut
     down and join the ones already running instead of leaking them
     blocked on the condition variable forever. *)
  (try
     for w = 0 to size - 1 do
       pool.domains <- Domain.spawn (fun () -> worker pool w) :: pool.domains
     done
   with e ->
     Mutex.lock pool.mutex;
     pool.shutdown <- true;
     Condition.broadcast pool.start;
     Mutex.unlock pool.mutex;
     List.iter Domain.join pool.domains;
     pool.domains <- [];
     raise e);
  pool

(* Run [task w] on every worker (w in 0..size-1) and on the caller
   (w = size); returns when all have finished. *)
let run_pool pool task =
  Mutex.lock pool.mutex;
  pool.task <- Some task;
  pool.generation <- pool.generation + 1;
  pool.active <- pool.size;
  Condition.broadcast pool.start;
  Mutex.unlock pool.mutex;
  task pool.size;
  Mutex.lock pool.mutex;
  while pool.active > 0 do
    Condition.wait pool.finished pool.mutex
  done;
  Mutex.unlock pool.mutex

let pool_size pool = pool.size

let submit pool job =
  Mutex.lock pool.mutex;
  if pool.shutdown || pool.size = 0 then begin
    Mutex.unlock pool.mutex;
    false
  end
  else begin
    Queue.push job pool.queue;
    Condition.signal pool.start;
    Mutex.unlock pool.mutex;
    true
  end

let drain pool =
  Mutex.lock pool.mutex;
  while not (Queue.is_empty pool.queue && pool.running = 0) do
    Condition.wait pool.idle pool.mutex
  done;
  Mutex.unlock pool.mutex

let pending pool =
  Mutex.lock pool.mutex;
  let queued = Queue.length pool.queue and running = pool.running in
  Mutex.unlock pool.mutex;
  (queued, running)

(* Bounded quiescence wait for supervisors that cannot afford an
   unbounded [drain] — a wedged job must not pin the daemon's
   shutdown path forever. Condition variables have no timed wait in
   the stdlib, so this polls; the period is coarse enough to cost
   nothing and fine enough that the caller's timeout is honored to
   within ~10ms. *)
let drain_for pool ~seconds =
  let deadline = Clock.now () +. seconds in
  let rec go () =
    let queued, running = pending pool in
    if queued = 0 && running = 0 then true
    else if Clock.now () >= deadline then false
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

(* Idempotent: the daemon's signal path may race a normal teardown,
   and double-joining a domain is an error. The first caller flips
   [shutdown] under the lock and owns the joins; later callers see the
   flag and return. Workers finish their current job/task before
   exiting (Domain.join waits for that), but queued-not-yet-started
   jobs are dropped — call [drain] first for a graceful stop. *)
let shutdown_pool pool =
  Mutex.lock pool.mutex;
  if pool.shutdown then Mutex.unlock pool.mutex
  else begin
    pool.shutdown <- true;
    Condition.broadcast pool.start;
    let domains = pool.domains in
    pool.domains <- [];
    Mutex.unlock pool.mutex;
    List.iter Domain.join domains
  end

(* ------------------------------------------------------------------ *)
(* Level-parallel labeling                                             *)
(* ------------------------------------------------------------------ *)

(* Work-stealing granularity. A worker claims [chunk] consecutive
   positions per trip through the atomic cursor; chunks shrink as the
   level narrows but never below [chunk_min], because a 1-node chunk
   makes every claim a contended fetch_and_add for a few microseconds
   of matching — on a level of width ~jobs the cursor traffic used to
   exceed the useful work (the old policy was [max 1 (len / (jobs *
   8))], which degenerates to 1 for any level under 8 * jobs nodes). *)
let chunk_min = 8

(* Below this many nodes a level is labeled on the calling domain:
   there is less than one minimum-size chunk per worker, so the
   barrier plus cursor traffic costs more than the matching it would
   parallelize. Scheduling only changes who computes a label, never
   its value, so the threshold is free to move without perturbing
   bit-identity. *)
let fanout_threshold jobs = jobs * chunk_min

let chunk_for ~jobs len = max chunk_min (len / (jobs * 8))

(* Claim dense [chunk]-sized slices of positions below [hi] through
   [cursor] (pre-set to the first position) and apply [f] to each
   claimed position. Shared by the boxed and arena labelers — the
   scheduling protocol is identical, only the node lookup differs. *)
let steal_chunks ~cursor ~chunks_claimed ~chunk ~hi f =
  let rec loop () =
    let start = Atomic.fetch_and_add cursor chunk in
    if start < hi then begin
      ignore (Atomic.fetch_and_add chunks_claimed 1);
      let stop = min hi (start + chunk) - 1 in
      for i = start to stop do
        f i
      done;
      loop ()
    end
  in
  loop ()

let label ?jobs ?(cache = true) ?(pi_arrival = fun _ -> 0.0) mode db g =
  let jobs =
    match jobs with
    | None -> recommended_jobs ()
    | Some j -> max 1 j
  in
  let cls = Mapper.mode_class mode in
  let n = Subject.num_nodes g in
  let fanouts = Subject.fanout_counts g in
  let levels = Subject.levels g in
  let by_level = Subject.by_level g in
  let labels = Array.make n 0.0 in
  let best : Matcher.mtch option array = Array.make n None in
  let caches =
    Array.init jobs (fun _ ->
        if cache then Some (Matchdb.create_cache db) else None)
  in
  (* Per-worker counters; the total is deterministic (a sum over
     nodes of a per-node count) even though the split is not. *)
  let tried = Array.make jobs 0 in
  let super_tried = Array.make jobs 0 in
  let level_seconds = Array.make (Array.length by_level) 0.0 in
  (* Queue/steal statistics: levels wide enough to fan out, and the
     number of work chunks handed through the atomic cursor (a proxy
     for stealing granularity). Both are deterministic per run shape;
     only the chunk *assignment* to workers varies. *)
  let parallel_levels = ref 0 in
  let chunks_claimed = Atomic.make 0 in
  let failure : exn option Atomic.t = Atomic.make None in
  let process worker node =
    match Subject.kind g node with
    | Spi -> labels.(node) <- pi_arrival node
    | Snand _ | Sinv _ ->
      let t, st =
        Mapper.label_node ?cache:caches.(worker) cls db g ~fanouts ~levels
          ~labels ~best node
      in
      tried.(worker) <- tried.(worker) + t;
      super_tried.(worker) <- super_tried.(worker) + st
  in
  let pool = if jobs > 1 then Some (make_pool (jobs - 1)) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter shutdown_pool pool)
    (fun () ->
      let run_level li nodes =
        let t0 = Clock.now () in
        let len = Array.length nodes in
        (match pool with
         | Some pool when len >= fanout_threshold jobs ->
           incr parallel_levels;
           (* Work-stealing over fixed-size chunks: an atomic cursor
              hands out index ranges, so a worker stuck on an
              expensive node (a deep cone in a rich library) does
              not stall the rest of the level. *)
           let cursor = Atomic.make 0 in
           let chunk = chunk_for ~jobs len in
           run_pool pool (fun w ->
               try
                 steal_chunks ~cursor ~chunks_claimed ~chunk ~hi:len
                   (fun i -> process w nodes.(i))
               with e ->
                 ignore (Atomic.compare_and_set failure None (Some e)));
           (match Atomic.get failure with
            | Some e -> raise e
            | None -> ())
         | _ ->
           (* The calling domain reuses the last worker slot's cache
              so small levels still feed the same cache as large
              ones. *)
           Array.iter (process (jobs - 1)) nodes);
        let dt = Clock.now () -. t0 in
        level_seconds.(li) <- dt;
        Metrics.Histogram.observe (Metrics.histogram "parmap.level_seconds") dt
      in
      Array.iteri
        (fun li nodes ->
          if Span.is_enabled () then
            Span.with_span ~cat:"parmap"
              (Printf.sprintf "level %d (%d nodes)" li (Array.length nodes))
              (fun () -> run_level li nodes)
          else run_level li nodes)
        by_level);
  let tried = Array.fold_left ( + ) 0 tried in
  let super_tried = Array.fold_left ( + ) 0 super_tried in
  let hits, misses, lookups =
    Array.fold_left
      (fun (h, m, l) c ->
        match c with
        | None -> (h, m, l)
        | Some c ->
          ( h + Matchdb.cache_hits c,
            m + Matchdb.cache_misses c,
            l + Matchdb.cache_lookups c ))
      (0, 0, 0) caches
  in
  let widest_level =
    Array.fold_left (fun acc ns -> max acc (Array.length ns)) 0 by_level
  in
  Metrics.Counter.add (Metrics.counter "parmap.chunks") (Atomic.get chunks_claimed);
  Metrics.Counter.add (Metrics.counter "parmap.parallel_levels") !parallel_levels;
  let stats =
    { domains = jobs;
      levels = Array.length by_level;
      widest_level;
      level_seconds;
      parallel_levels = !parallel_levels;
      chunks = Atomic.get chunks_claimed }
  in
  (labels, best, (tried, super_tried, hits, misses, lookups), stats)

let map ?jobs ?cache mode db g =
  let t0 = Clock.now () in
  let labels, best, (tried, super_tried, hits, misses, lookups), par =
    Span.with_span ~cat:"parmap" "label" (fun () -> label ?jobs ?cache mode db g)
  in
  let t1 = Clock.now () in
  let netlist =
    Span.with_span ~cat:"parmap" "cover" (fun () -> Mapper.cover g best)
  in
  let t2 = Clock.now () in
  ( { Mapper.netlist;
      labels;
      best;
      run =
        { Mapper.label_seconds = t1 -. t0;
          cover_seconds = t2 -. t1;
          matches_tried = tried;
          super_matches_tried = super_tried;
          cache_hits = hits;
          cache_misses = misses;
          cache_lookups = lookups;
          super_gates_used = Mapper.super_gates_in netlist } },
    par )

(* ------------------------------------------------------------------ *)
(* Arena-native level-parallel labeling                                 *)
(* ------------------------------------------------------------------ *)

(* The same level-synchronous sweep as [label], but running directly
   on the flat arena: the parallel fronts are the dense index ranges
   of the counting-sorted [Arena.level_ranges] order array, so
   claiming work is bumping an int cursor across a contiguous slice —
   no per-level boxed node lists to build, no allocation on the
   claim path — and arrival labels land in the same off-heap float
   vector [Arena_map] uses. The determinism argument is unchanged:
   each node is written by exactly one worker, the level barrier makes
   lower levels visible before anyone reads them, and
   [Arena_map.label_node] is a pure function of lower-level labels, so
   the result is bit-identical to the sequential [Arena_map.label]
   (and hence, via the arena differential suite, to the boxed
   [Mapper]) no matter how the stealing interleaves. *)
let label_arena ?jobs ?(cache = true) ?(pi_arrival = fun _ -> 0.0) mode db a =
  let jobs =
    match jobs with
    | None -> recommended_jobs ()
    | Some j -> max 1 j
  in
  let cls = Mapper.mode_class mode in
  let n = Arena.num_nodes a in
  let fanouts = Arena.fanout_counts a in
  let levels = Arena.levels a in
  let order, starts = Arena.level_ranges a in
  let num_levels = Array.length starts - 1 in
  let labels = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  let best : Matcher.mtch option array = Array.make n None in
  let caches =
    Array.init jobs (fun _ ->
        if cache then Some (Arena_map.create_cache ()) else None)
  in
  let tried = Array.make jobs 0 in
  let super_tried = Array.make jobs 0 in
  let level_seconds = Array.make num_levels 0.0 in
  let parallel_levels = ref 0 in
  let chunks_claimed = Atomic.make 0 in
  let failure : exn option Atomic.t = Atomic.make None in
  let fanin0 = a.Arena.fanin0 in
  let process worker node =
    if Bigarray.Array1.unsafe_get fanin0 node < 0 then
      Bigarray.Array1.unsafe_set labels node (pi_arrival node)
    else begin
      let t, st =
        Arena_map.label_node ?cache:caches.(worker) cls db a ~fanouts ~levels
          ~labels ~best node
      in
      tried.(worker) <- tried.(worker) + t;
      super_tried.(worker) <- super_tried.(worker) + st
    end
  in
  let pool = if jobs > 1 then Some (make_pool (jobs - 1)) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter shutdown_pool pool)
    (fun () ->
      let run_level li =
        let t0 = Clock.now () in
        let lo = starts.(li) and hi = starts.(li + 1) in
        let len = hi - lo in
        (match pool with
         | Some pool when len >= fanout_threshold jobs ->
           incr parallel_levels;
           let cursor = Atomic.make lo in
           let chunk = chunk_for ~jobs len in
           run_pool pool (fun w ->
               try
                 steal_chunks ~cursor ~chunks_claimed ~chunk ~hi (fun i ->
                     process w order.(i))
               with e ->
                 ignore (Atomic.compare_and_set failure None (Some e)));
           (match Atomic.get failure with
            | Some e -> raise e
            | None -> ())
         | _ ->
           (* The calling domain reuses the last worker slot's cache
              so small levels still feed the same cache as large
              ones. *)
           for i = lo to hi - 1 do
             process (jobs - 1) order.(i)
           done);
        let dt = Clock.now () -. t0 in
        level_seconds.(li) <- dt;
        Metrics.Histogram.observe (Metrics.histogram "parmap.level_seconds") dt
      in
      for li = 0 to num_levels - 1 do
        if Span.is_enabled () then
          Span.with_span ~cat:"parmap"
            (Printf.sprintf "level %d (%d nodes)" li
               (starts.(li + 1) - starts.(li)))
            (fun () -> run_level li)
        else run_level li
      done);
  let tried = Array.fold_left ( + ) 0 tried in
  let super_tried = Array.fold_left ( + ) 0 super_tried in
  let hits, misses, lookups =
    Array.fold_left
      (fun (h, m, l) c ->
        match c with
        | None -> (h, m, l)
        | Some c ->
          ( h + Arena_map.cache_hits c,
            m + Arena_map.cache_misses c,
            l + Arena_map.cache_lookups c ))
      (0, 0, 0) caches
  in
  let widest_level = ref 0 in
  for l = 0 to num_levels - 1 do
    widest_level := max !widest_level (starts.(l + 1) - starts.(l))
  done;
  Metrics.Counter.add (Metrics.counter "parmap.chunks") (Atomic.get chunks_claimed);
  Metrics.Counter.add (Metrics.counter "parmap.parallel_levels") !parallel_levels;
  let stats =
    { domains = jobs;
      levels = num_levels;
      widest_level = !widest_level;
      level_seconds;
      parallel_levels = !parallel_levels;
      chunks = Atomic.get chunks_claimed }
  in
  (labels, best, (tried, super_tried, hits, misses, lookups), stats)

let map_arena ?jobs ?cache ?subject mode db a =
  let subject =
    match subject with Some s -> s | None -> Arena.to_subject a
  in
  let t0 = Clock.now () in
  let labels, best, (tried, super_tried, hits, misses, lookups), par =
    Span.with_span ~cat:"parmap" "label" (fun () ->
        label_arena ?jobs ?cache mode db a)
  in
  let t1 = Clock.now () in
  let netlist =
    Span.with_span ~cat:"parmap" "cover" (fun () ->
        Arena_map.cover a ~subject best)
  in
  let t2 = Clock.now () in
  let labels_arr =
    Array.init (Bigarray.Array1.dim labels) (Bigarray.Array1.unsafe_get labels)
  in
  ( { Mapper.netlist;
      labels = labels_arr;
      best;
      run =
        { Mapper.label_seconds = t1 -. t0;
          cover_seconds = t2 -. t1;
          matches_tried = tried;
          super_matches_tried = super_tried;
          cache_hits = hits;
          cache_misses = misses;
          cache_lookups = lookups;
          super_gates_used = Mapper.super_gates_in netlist } },
    par )
