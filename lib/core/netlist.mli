(** Mapped netlists: the output of technology mapping.

    A netlist is a DAG of library gate instances over the subject
    graph's primary inputs. Delay evaluation uses the same
    load-independent pin-to-pin intrinsic delays the mappers
    optimize, so a mapper's predicted arrival times can be checked
    against the netlist (and are, in the test suite). *)

open Dagmap_genlib
open Dagmap_subject

type driver =
  | D_pi of int          (** subject id of a primary input *)
  | D_gate of int        (** instance index *)
  | D_const of bool      (** constant output (folded away logic) *)

type instance = {
  inst_id : int;
  gate : Gate.t;
  inputs : driver array;  (** one per gate pin *)
  subject_root : int;     (** subject node this instance implements *)
  covers : int array;     (** subject nodes absorbed by this instance *)
}

type t = {
  source : Subject.t;
  instances : instance array;
  outputs : (string * driver) list;
}

val area : t -> float
val num_gates : t -> int

val arrival_times : t -> float array
(** Arrival time at each instance output (PIs arrive at 0). *)

val delay : t -> float
(** Worst arrival over all outputs. *)

val output_arrivals : t -> (string * float) list

val gate_histogram : t -> (string * int) list
(** Instance count per gate name, descending. *)

val duplication : t -> int
(** Number of subject-node coverings beyond the first: the sum over
    instances of covered subject nodes, minus the number of distinct
    covered subject nodes. DAG covering replicates logic exactly when
    this is positive; tree mapping always reports [0]. *)

val eval : t -> bool array -> (string * bool) list
(** Evaluate outputs under a PI assignment (indexed in subject PI
    order) by interpreting gate truth tables. *)

val max_fanout : t -> int
(** Largest fanout of any instance or PI in the mapped circuit. *)

val lint : t -> string list
(** Structural checks, collecting every violation instead of stopping
    at the first: instance ids match their indices, pin counts match
    the gate, driver indices in range, PI drivers are subject PIs,
    instance graph acyclic. Returns [[]] on a well-formed netlist.
    The {!Dagmap_check} layer builds its structural audit on top of
    this. *)

val validate : t -> unit
(** Structural checks: pins all driven, instance graph acyclic,
    driver indices in range. Raises [Failure] with the first
    {!lint} issue on violation. *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable summary (delay, area, gate counts). *)
