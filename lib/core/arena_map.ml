open Dagmap_genlib
open Dagmap_obs

(* Every function here is a line-for-line port of its legacy
   counterpart (matcher.ml / matchdb.ml / mapper.ml) with boxed kind
   inspection replaced by reads of the arena fanin vectors. Order of
   enumeration, tie-breaking and cache replay semantics are part of
   the contract: the differential suite requires bit-identical labels,
   best matches and covers. Keep the two sides in lockstep. *)

type labels = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let aget = Bigarray.Array1.unsafe_get

(* Kind codes, aligned with Matchdb's category indices:
   0 = PI (matches only leaves), 1 = INV, 2 = NAND. *)
let kcode a i =
  if aget a.Arena.fanin0 i < 0 then 0
  else if aget a.Arena.fanin1 i < 0 then 1
  else 2

(* A category index accepts a kind code: leaves accept anything,
   inv/nand require the like kind (Matchdb.cat_matches). *)
let cat_ok cat k = cat = 0 || cat = k

(* ------------------------------------------------------------------ *)
(* Matcher (port of Matcher.for_each_match)                            *)
(* ------------------------------------------------------------------ *)

let for_each_match cls a ~fanouts p root f =
  let nodes = p.Pattern.nodes in
  let n = Array.length nodes in
  let binding = Array.make n (-1) in
  let bound_to = Hashtbl.create 16 in
  let injective =
    match cls with
    | Matcher.Standard | Matcher.Exact -> true
    | Matcher.Extended -> false
  in
  let f0 = a.Arena.fanin0 and f1 = a.Arena.fanin1 in
  let rec go pid sid k =
    if binding.(pid) >= 0 then begin
      if binding.(pid) = sid then k ()
    end
    else if injective && Hashtbl.mem bound_to sid then ()
    else begin
      let fanout_ok =
        match cls, nodes.(pid) with
        | Matcher.Exact, (Pattern.Pinv _ | Pattern.Pnand _) ->
          pid = p.Pattern.root || fanouts.(sid) = p.Pattern.fanout.(pid)
        | (Matcher.Exact | Matcher.Standard | Matcher.Extended), _ -> true
      in
      if fanout_ok then begin
        let bind () =
          binding.(pid) <- sid;
          if injective then Hashtbl.add bound_to sid pid
        in
        let unbind () =
          binding.(pid) <- -1;
          if injective then Hashtbl.remove bound_to sid
        in
        match nodes.(pid) with
        | Pattern.Pleaf _ ->
          bind ();
          k ();
          unbind ()
        | Pattern.Pinv c ->
          let x = aget f0 sid in
          if x >= 0 && aget f1 sid < 0 then begin
            bind ();
            go c x k;
            unbind ()
          end
        | Pattern.Pnand (pa, pb) ->
          let x = aget f0 sid in
          if x >= 0 then begin
            let y = aget f1 sid in
            if y >= 0 then begin
              bind ();
              go pa x (fun () -> go pb y k);
              if x <> y then go pa y (fun () -> go pb x k);
              unbind ()
            end
          end
      end
    end
  in
  let seen = Hashtbl.create 4 in
  let emit () =
    let pins = Array.make (Gate.num_pins p.Pattern.gate) (-1) in
    Array.iteri
      (fun i pin -> if pin >= 0 then pins.(pin) <- binding.(i))
      p.Pattern.pin_of_leaf;
    let key = Array.to_list pins in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let covered = ref [] in
      Array.iteri
        (fun i pn ->
          match pn with
          | Pattern.Pleaf _ -> ()
          | Pattern.Pinv _ | Pattern.Pnand _ ->
            covered := binding.(i) :: !covered)
        nodes;
      let covered = Array.of_list (List.sort_uniq compare !covered) in
      f { Matcher.pattern = p; pins; covered }
    end
  in
  go p.Pattern.root root emit

(* ------------------------------------------------------------------ *)
(* Enumeration (port of Matchdb.enumerate over the exposed buckets)    *)
(* ------------------------------------------------------------------ *)

let enumerate db cls a ~fanouts ~levels node f =
  let try_pattern p =
    if p.Pattern.depth <= levels.(node) then
      for_each_match cls a ~fanouts p node f
  in
  let x = aget a.Arena.fanin0 node in
  if x >= 0 then begin
    let y = aget a.Arena.fanin1 node in
    if y < 0 then begin
      let kx = kcode a x in
      for cat = 0 to 2 do
        if cat_ok cat kx then List.iter try_pattern (Matchdb.inv_bucket db cat)
      done
    end
    else begin
      let kx = kcode a x and ky = kcode a y in
      for lo = 0 to 2 do
        for hi = lo to 2 do
          let compatible =
            (cat_ok lo kx && cat_ok hi ky) || (cat_ok lo ky && cat_ok hi kx)
          in
          if compatible then
            List.iter try_pattern (Matchdb.nand_bucket db lo hi)
        done
      done
    end
  end

(* ------------------------------------------------------------------ *)
(* Canonical-signature match cache (port of Matchdb's)                 *)
(* ------------------------------------------------------------------ *)

type centry = {
  c_pattern : Pattern.t;
  c_pins : int array;
  c_covered : int array;
}

type cache = {
  table : (string, centry list) Hashtbl.t;
  (* A cache is owned by exactly one domain (the sequential labeler
     holds one; the parallel labeler gives each worker its own), so
     plain ints suffice locally; each bump is mirrored into the
     process-global atomic registry counters shared with the legacy
     caches. *)
  mutable hits : int;
  mutable misses : int;
  mutable lookups : int;
  mutable disabled : bool;
  mutable cone : int array;
  mutable cone_len : int;
  local_of : (int, int) Hashtbl.t;
  buf : Buffer.t;
}

let global_hits = Metrics.counter "matchdb.cache.hits"
let global_misses = Metrics.counter "matchdb.cache.misses"
let global_lookups = Metrics.counter "matchdb.cache.lookups"

let create_cache () =
  { table = Hashtbl.create 1024;
    hits = 0;
    misses = 0;
    lookups = 0;
    disabled = false;
    cone = Array.make 64 0;
    cone_len = 0;
    local_of = Hashtbl.create 64;
    buf = Buffer.create 256 }

let cache_hits c = c.hits
let cache_misses c = c.misses
let cache_lookups c = c.lookups

let count_hit c =
  c.hits <- c.hits + 1;
  Metrics.Counter.incr global_hits

let count_miss c =
  c.misses <- c.misses + 1;
  Metrics.Counter.incr global_misses

let count_lookup c =
  c.lookups <- c.lookups + 1;
  Metrics.Counter.incr global_lookups

(* Same tuning as Matchdb: cone budget, probation length and the
   <25 % self-retirement threshold. *)
let cone_budget = 512
let probation = 2048
let min_hit_shift = 2

let maybe_retire c =
  if c.lookups >= probation && c.hits < c.lookups asr min_hit_shift then begin
    c.disabled <- true;
    Hashtbl.reset c.table
  end

let push_cone c sid =
  let id = c.cone_len in
  if id = Array.length c.cone then begin
    let grown = Array.make (2 * id) 0 in
    Array.blit c.cone 0 grown 0 id;
    c.cone <- grown
  end;
  c.cone.(id) <- sid;
  c.cone_len <- id + 1;
  Hashtbl.replace c.local_of sid id;
  id

let add_id buf i = Buffer.add_int16_ne buf i

let cone_key c db cls a ~fanouts ~levels node =
  c.cone_len <- 0;
  Hashtbl.reset c.local_of;
  let buf = c.buf in
  Buffer.clear buf;
  Buffer.add_char buf
    (match cls with
     | Matcher.Standard -> 's'
     | Matcher.Exact -> 'e'
     | Matcher.Extended -> 'x');
  let max_depth = Matchdb.max_depth db in
  Buffer.add_int8 buf (min levels.(node) max_depth);
  let exact = cls = Matcher.Exact in
  let q = Queue.create () in
  ignore (push_cone c node);
  Queue.add (node, 0) q;
  let ok = ref true in
  while !ok && not (Queue.is_empty q) do
    let sid, d = Queue.pop q in
    if c.cone_len > cone_budget then ok := false
    else begin
      let child x =
        match Hashtbl.find_opt c.local_of x with
        | Some l -> l
        | None ->
          let l = push_cone c x in
          Queue.add (x, d + 1) q;
          l
      in
      (if d >= max_depth then Buffer.add_char buf 'f'
       else
         let x = aget a.Arena.fanin0 sid in
         if x < 0 then Buffer.add_char buf 'p'
         else
           let y = aget a.Arena.fanin1 sid in
           if y < 0 then begin
             Buffer.add_char buf 'i';
             add_id buf (child x)
           end
           else begin
             Buffer.add_char buf 'n';
             let lx = child x in
             let ly = child y in
             add_id buf lx;
             add_id buf ly
           end);
      if exact && d > 0 && d < max_depth then
        Buffer.add_int8 buf (min fanouts.(sid) 255)
    end
  done;
  if !ok then Some (Buffer.contents buf) else None

let translate c (e : centry) =
  let pins =
    Array.map (fun l -> if l >= 0 then c.cone.(l) else -1) e.c_pins
  in
  let covered = Array.map (fun l -> c.cone.(l)) e.c_covered in
  Array.sort compare covered;
  { Matcher.pattern = e.c_pattern; pins; covered }

let intern c (m : Matcher.mtch) =
  { c_pattern = m.Matcher.pattern;
    c_pins =
      Array.map
        (fun s -> if s >= 0 then Hashtbl.find c.local_of s else -1)
        m.Matcher.pins;
    c_covered =
      Array.map (fun s -> Hashtbl.find c.local_of s) m.Matcher.covered }

let for_each_node_match ?cache db cls a ~fanouts ~levels node f =
  match cache with
  | None -> enumerate db cls a ~fanouts ~levels node f
  | Some c when c.disabled || aget a.Arena.fanin0 node < 0 ->
    enumerate db cls a ~fanouts ~levels node f
  | Some c -> begin
    count_lookup c;
    match cone_key c db cls a ~fanouts ~levels node with
    | None ->
      count_miss c;
      maybe_retire c;
      enumerate db cls a ~fanouts ~levels node f
    | Some key -> begin
      match Hashtbl.find_opt c.table key with
      | Some entries ->
        count_hit c;
        List.iter (fun e -> f (translate c e)) entries
      | None ->
        count_miss c;
        maybe_retire c;
        let acc = ref [] in
        enumerate db cls a ~fanouts ~levels node (fun m ->
            acc := intern c m :: !acc;
            f m);
        if not c.disabled then Hashtbl.replace c.table key (List.rev !acc)
    end
  end

(* ------------------------------------------------------------------ *)
(* Labeling DP (port of Mapper.label / label_node)                     *)
(* ------------------------------------------------------------------ *)

let match_arrival (labels : labels) (m : Matcher.mtch) =
  let g = Matcher.gate m in
  let worst = ref neg_infinity in
  Array.iteri
    (fun pin node ->
      if node >= 0 then
        worst :=
          Float.max !worst
            (aget labels node +. Gate.intrinsic_delay g pin
            +. !Mapper.test_pin_delay_skew))
    m.Matcher.pins;
  if !worst = neg_infinity then 0.0 else !worst

let better arrival area pins (best_arrival, best_area, best_pins) =
  arrival < best_arrival -. 1e-12
  || (arrival < best_arrival +. 1e-12
      && (area < best_area -. 1e-9
          || (area < best_area +. 1e-9 && pins < best_pins)))

let label_node ?cache cls db a ~fanouts ~levels ~labels ~best node =
  let tried = ref 0 in
  let super_tried = ref 0 in
  let best_cost = ref (infinity, infinity, max_int) in
  for_each_node_match ?cache db cls a ~fanouts ~levels node (fun m ->
      incr tried;
      let gate = Matcher.gate m in
      if Gate.is_super gate then incr super_tried;
      let arrival = match_arrival labels m in
      let area = gate.Gate.area in
      let pins = Gate.num_pins gate in
      if better arrival area pins !best_cost then begin
        best_cost := (arrival, area, pins);
        best.(node) <- Some m
      end);
  (match best.(node) with
   | Some _ ->
     let arrival, _, _ = !best_cost in
     Bigarray.Array1.unsafe_set labels node arrival
   | None ->
     raise
       (Mapper.Unmappable
          { node;
            description =
              Printf.sprintf "no %s match for subject node %d"
                (Matcher.class_name cls) node }));
  (!tried, !super_tried)

let label ?(pi_arrival = fun _ -> 0.0) ?(cache = true) mode db a =
  let cls = Mapper.mode_class mode in
  let cache = if cache then Some (create_cache ()) else None in
  let n = Arena.num_nodes a in
  let fanouts = Arena.fanout_counts a in
  let levels = Arena.levels a in
  let labels =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n
  in
  let best : Matcher.mtch option array = Array.make n None in
  let tried = ref 0 in
  let super_tried = ref 0 in
  for node = 0 to n - 1 do
    if aget a.Arena.fanin0 node < 0 then
      Bigarray.Array1.unsafe_set labels node (pi_arrival node)
    else begin
      let t, st =
        label_node ?cache cls db a ~fanouts ~levels ~labels ~best node
      in
      tried := !tried + t;
      super_tried := !super_tried + st
    end
  done;
  (labels, best, (!tried, !super_tried))

(* ------------------------------------------------------------------ *)
(* Cover construction (port of Mapper.cover)                           *)
(* ------------------------------------------------------------------ *)

let cover a ~subject (best : Matcher.mtch option array) =
  let needed : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let require node =
    if aget a.Arena.fanin0 node >= 0 && not (Hashtbl.mem needed node)
    then begin
      Hashtbl.add needed node ();
      Queue.add node queue
    end
  in
  Array.iter (fun (_, node) -> require node) a.Arena.outputs;
  let chosen = ref [] in
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    match best.(node) with
    | None -> assert false
    | Some m ->
      chosen := (node, m) :: !chosen;
      Array.iter
        (fun pin_node -> if pin_node >= 0 then require pin_node)
        m.Matcher.pins
  done;
  let index = Hashtbl.create 64 in
  List.iteri (fun i (node, _) -> Hashtbl.replace index node i) !chosen;
  let driver_of node =
    if aget a.Arena.fanin0 node < 0 then Netlist.D_pi node
    else Netlist.D_gate (Hashtbl.find index node)
  in
  let instances =
    Array.of_list
      (List.mapi
         (fun i (node, m) ->
           let gate = Matcher.gate m in
           let inputs =
             Array.map
               (fun pin_node ->
                 if pin_node >= 0 then driver_of pin_node
                 else Netlist.D_const false)
               m.Matcher.pins
           in
           { Netlist.inst_id = i; gate; inputs; subject_root = node;
             covers = m.Matcher.covered })
         !chosen)
  in
  let outputs =
    List.map (fun (name, node) -> (name, driver_of node))
      (Array.to_list a.Arena.outputs)
    @ List.map (fun (name, b) -> (name, Netlist.D_const b)) a.Arena.const_outputs
  in
  { Netlist.source = subject; instances; outputs }

(* ------------------------------------------------------------------ *)
(* End-to-end (port of Mapper.map)                                     *)
(* ------------------------------------------------------------------ *)

let map ?(cache = true) ?subject mode db a =
  let subject =
    match subject with Some s -> s | None -> Arena.to_subject a
  in
  let cls = Mapper.mode_class mode in
  let cache = if cache then Some (create_cache ()) else None in
  let t0 = Clock.now () in
  let labels, best, (tried, super_tried) =
    Span.with_span ~cat:"mapper" "label" (fun () ->
        let n = Arena.num_nodes a in
        let fanouts = Arena.fanout_counts a in
        let levels = Arena.levels a in
        let labels =
          Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n
        in
        let best : Matcher.mtch option array = Array.make n None in
        let tried = ref 0 in
        let super_tried = ref 0 in
        for node = 0 to n - 1 do
          if aget a.Arena.fanin0 node < 0 then
            Bigarray.Array1.unsafe_set labels node 0.0
          else begin
            let t, st =
              label_node ?cache cls db a ~fanouts ~levels ~labels ~best node
            in
            tried := !tried + t;
            super_tried := !super_tried + st
          end
        done;
        (labels, best, (!tried, !super_tried)))
  in
  let t1 = Clock.now () in
  let netlist =
    Span.with_span ~cat:"mapper" "cover" (fun () -> cover a ~subject best)
  in
  let t2 = Clock.now () in
  Metrics.Histogram.observe (Metrics.histogram "mapper.label_seconds") (t1 -. t0);
  Metrics.Histogram.observe (Metrics.histogram "mapper.cover_seconds") (t2 -. t1);
  Metrics.Counter.incr (Metrics.counter "mapper.maps");
  Metrics.Counter.add (Metrics.counter "mapper.matches_tried") tried;
  let ch, cm, cl =
    match cache with
    | None -> (0, 0, 0)
    | Some c -> (c.hits, c.misses, c.lookups)
  in
  let labels_arr = Array.init (Bigarray.Array1.dim labels) (aget labels) in
  { Mapper.netlist;
    labels = labels_arr;
    best;
    run =
      { Mapper.label_seconds = t1 -. t0; cover_seconds = t2 -. t1;
        matches_tried = tried; super_matches_tried = super_tried;
        cache_hits = ch; cache_misses = cm; cache_lookups = cl;
        super_gates_used = Mapper.super_gates_in netlist } }
