(** Persistent supergate libraries (.sglib).

    A versioned, checksummed text container for a generated supergate
    set: a header naming the base library (with an FNV-1a-64
    fingerprint of its genlib text) and the generation bounds, the
    supergates as ordinary genlib text, and a trailing [END
    <checksum>] line over every preceding byte. The format is
    deterministic — {!to_string} of the same generation result is
    byte-identical — so .sglib files can be diffed and cached.

    Reading verifies the magic/version, the checksum and the gate
    count, and retags the parsed gates
    {!Dagmap_genlib.Gate.Super}; {!augment} verifies the base
    fingerprint so a stale library (built against a different base)
    is rejected instead of silently mis-mapping. *)

open Dagmap_genlib

exception Format_error of string
(** Raised on malformed, corrupted, version-mismatched or stale
    files. The message is self-explanatory. *)

type t = {
  base_name : string;
  base_fingerprint : string;
  bounds : Superenum.bounds;
  supergates : Gate.t list;
}

val make :
  ?bounds:Superenum.bounds ->
  ?jobs:int ->
  Libraries.t ->
  t * Superenum.stats
(** Generate ({!Superenum.generate}) and wrap with the base
    library's name and fingerprint. *)

val fingerprint : Libraries.t -> string
(** FNV-1a-64 of the library's genlib text. *)

val to_string : t -> string
val of_string : string -> t

val write_file : string -> t -> unit
val read_file : string -> t

val augment : ?max_shapes:int -> Libraries.t -> t -> Libraries.t
(** [augment base t] is a library named ["<base>+super"] containing
    the base gates followed by the supergates, with patterns
    regenerated ([max_shapes] per gate, default 8 — supergate
    formulas have many NAND2-INV decompositions). Raises
    {!Format_error} when [t] was not generated from [base]. *)
