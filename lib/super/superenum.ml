open Dagmap_logic
open Dagmap_genlib
open Dagmap_core
open Dagmap_obs

type bounds = {
  depth : int;
  max_pins : int;
  max_size : int;
  max_gates : int;
  fusion : float;
  class_cap : int;
}

let default_bounds =
  { depth = 2;
    max_pins = 5;
    max_size = 4;
    max_gates = 200;
    fusion = 0.85;
    class_cap = 2 }

type stats = {
  considered : int;
  distinct_classes : int;
  emitted : int;
  seconds : float;
}

(* One enumerated composition, annotated with everything the
   dedup/dominance pass sorts on. All fields are deterministic
   functions of the tree, so the global sort erases whatever order
   the parallel enumeration produced them in. *)
type cand = {
  tree : Supergate.tree;
  func : Truth.t;
  key : string;     (* Supercanon class key *)
  leaves : int;
  size : int;
  dep : int;
  max_delay : float;
  area : float;
  skey : string;    (* structure string: injective final tiebreak *)
  from_base : bool; (* seeded library gate: prunes, never emitted *)
}

(* Total order within one NPN class: delay-dominance first. *)
let cand_order a b =
  let c = compare a.max_delay b.max_delay in
  if c <> 0 then c
  else
    let c = compare a.area b.area in
    if c <> 0 then c
    else
      let c = compare a.size b.size in
      if c <> 0 then c
      else
        let c = compare a.leaves b.leaves in
        if c <> 0 then c else compare a.skey b.skey

(* Pareto frontier on (max_delay, area) of a class-sorted list: keep
   a candidate iff it is strictly smaller in area than everything
   faster than it. Base gates always stay (they are free — already in
   the library — and their presence prunes supergates that match an
   existing cell without beating it); at most [class_cap] supergates
   survive per class. *)
let prune class_cap cands =
  let rec go kept nsuper min_area = function
    | [] -> List.rev kept
    | c :: rest ->
      if c.area < min_area -. 1e-9 then
        if c.from_base then go (c :: kept) nsuper c.area rest
        else if nsuper < class_cap then go (c :: kept) (nsuper + 1) c.area rest
        else go kept nsuper min_area rest
      else go kept nsuper min_area rest
  in
  go [] 0 infinity cands

let validate b =
  if b.depth < 2 then invalid_arg "Superenum: depth must be >= 2";
  if b.max_pins < 2 || b.max_pins > 6 then
    invalid_arg "Superenum: max_pins must be in 2..6";
  if b.max_size < 2 then invalid_arg "Superenum: max_size must be >= 2";
  if b.max_gates < 0 then invalid_arg "Superenum: max_gates must be >= 0";
  if not (b.fusion > 0.0 && b.fusion <= 1.0) then
    invalid_arg "Superenum: fusion must be in (0, 1]";
  if b.class_cap < 1 then invalid_arg "Superenum: class_cap must be >= 1"

(* Gates usable as composition members: real logic cells. Buffers and
   constants only pad compositions; single-pin inverters are kept
   (inv over a NAND tree is how AND/OR shapes arise). *)
let usable b g =
  let p = Gate.num_pins g in
  p >= 1 && p <= b.max_pins
  && (not (Gate.is_buffer g))
  && Gate.is_constant g = None

let make_cand ~fusion ~from_base memo tree func =
  { tree;
    func;
    key = Supercanon.key memo func;
    leaves = Supergate.leaves tree;
    size = Supergate.size tree;
    dep = Supergate.depth tree;
    max_delay = Supergate.max_delay ~fusion tree;
    area = Supergate.quantize (Supergate.area tree);
    skey = Supergate.structure tree;
    from_base }

(* All compositions rooted at [g] of depth exactly [d]: each pin is a
   leaf or a subtree from [pool] (depth <= d - 1, at least one of
   depth exactly d - 1, so each level enumerates only new trees).
   Budgets: every unassigned pin still needs one leaf; gate count
   capped by [max_size]. *)
let enumerate_root b ~d ~pool ~consider g =
  let p = Gate.num_pins g in
  let children = Array.make p Supergate.Leaf in
  let rec assign pin leaves_used size_used has_deep =
    if pin = p then begin
      if has_deep then
        consider { Supergate.gate = g; children = Array.copy children }
    end
    else begin
      let rest = p - pin - 1 in
      if leaves_used + 1 + rest <= b.max_pins then begin
        children.(pin) <- Supergate.Leaf;
        assign (pin + 1) (leaves_used + 1) size_used has_deep
      end;
      List.iter
        (fun (st, l, s, dp) ->
          if
            dp <= d - 1
            && leaves_used + l + rest <= b.max_pins
            && size_used + s <= b.max_size
          then begin
            children.(pin) <- Supergate.Sub st;
            assign (pin + 1) (leaves_used + l) (size_used + s)
              (has_deep || dp = d - 1)
          end)
        pool
    end
  in
  assign 0 0 1 false

let generate ?(bounds = default_bounds) ?(jobs = 1) (lib : Libraries.t) =
  validate bounds;
  let b = bounds in
  let jobs = max 1 jobs in
  let t0 = Clock.now () in
  let base = List.filter (usable b) lib.Libraries.gates in
  let roots = Array.of_list base in
  (* Per-class table of pruned candidates, seeded with the base gates
     so a supergate only survives when it beats (or complements) what
     the library already has. *)
  let table : (string, cand list) Hashtbl.t = Hashtbl.create 256 in
  let memo0 = Supercanon.create_memo () in
  let considered_total = ref 0 in
  List.iter
    (fun g ->
      if Gate.num_pins g >= 2 then begin
        let tree = Supergate.single g in
        let c =
          make_cand ~fusion:b.fusion ~from_base:true memo0 tree g.Gate.func
        in
        let prev = Option.value ~default:[] (Hashtbl.find_opt table c.key) in
        Hashtbl.replace table c.key
          (prune b.class_cap (List.sort cand_order (c :: prev)))
      end)
    base;
  (* Merge a level's raw candidates into the table. Sorting the whole
     batch (class key first, dominance order within a class) before
     grouping makes the result independent of how the parallel
     enumeration partitioned the work. *)
  let merge_level cands =
    let cands =
      List.sort
        (fun a b ->
          let c = compare a.key b.key in
          if c <> 0 then c else cand_order a b)
        cands
    in
    let flush key group =
      let prev = Option.value ~default:[] (Hashtbl.find_opt table key) in
      let merged = List.merge cand_order prev (List.rev group) in
      Hashtbl.replace table key (prune b.class_cap merged)
    in
    let rec go cur group = function
      | [] -> (match cur with Some k -> flush k group | None -> ())
      | c :: rest -> (
        match cur with
        | Some k when String.equal k c.key -> go cur (c :: group) rest
        | Some k ->
          flush k group;
          go (Some c.key) [ c ] rest
        | None -> go (Some c.key) [ c ] rest)
    in
    go None [] cands
  in
  let supergate_reps () =
    Hashtbl.fold
      (fun _ cs acc ->
        List.fold_left
          (fun acc c -> if c.from_base then acc else c :: acc)
          acc cs)
      table []
  in
  let pool_domain = if jobs > 1 then Some (Parmap.make_pool (jobs - 1)) else None in
  let memos = Array.init jobs (fun _ -> Supercanon.create_memo ()) in
  Fun.protect
    ~finally:(fun () -> Option.iter Parmap.shutdown_pool pool_domain)
    (fun () ->
      for d = 2 to b.depth do
        Span.with_span ~cat:"superenum" (Printf.sprintf "depth %d" d)
        @@ fun () ->
        (* Subtrees available at this level: single base gates plus
           every supergate representative from lower levels. *)
        let pool =
          List.map (fun g -> (Supergate.single g, Gate.num_pins g, 1, 1)) base
          @ List.map
              (fun c -> (c.tree, c.leaves, c.size, c.dep))
              (List.sort cand_order (supergate_reps ()))
        in
        let results = Array.make jobs [] in
        let considered = Array.make jobs 0 in
        let failure : exn option Atomic.t = Atomic.make None in
        let cursor = Atomic.make 0 in
        let work w =
          try
            let memo = memos.(w) in
            let consider tree =
              considered.(w) <- considered.(w) + 1;
              let leaves = Supergate.leaves tree in
              if leaves >= 2 then begin
                let func = Supergate.func tree in
                if
                  Truth.is_const func = None
                  && List.length (Truth.support func) = leaves
                then
                  results.(w) <-
                    make_cand ~fusion:b.fusion ~from_base:false memo tree func
                    :: results.(w)
              end
            in
            let rec loop () =
              let r = Atomic.fetch_and_add cursor 1 in
              if r < Array.length roots then begin
                enumerate_root b ~d ~pool ~consider roots.(r);
                loop ()
              end
            in
            loop ()
          with e -> ignore (Atomic.compare_and_set failure None (Some e))
        in
        (match pool_domain with
         | Some p -> Parmap.run_pool p work
         | None -> work 0);
        (match Atomic.get failure with Some e -> raise e | None -> ());
        considered_total :=
          !considered_total + Array.fold_left ( + ) 0 considered;
        merge_level (List.concat (Array.to_list results))
      done);
  (* Emission: stable global order, then names that encode rank,
     leaves and depth — byte-identical across runs and job counts. *)
  let reps =
    List.sort
      (fun a b ->
        let c = compare a.leaves b.leaves in
        if c <> 0 then c
        else
          let c = compare a.dep b.dep in
          if c <> 0 then c
          else
            let c = cand_order a b in
            if c <> 0 then c else compare a.key b.key)
      (supergate_reps ())
  in
  let reps = List.filteri (fun i _ -> i < b.max_gates) reps in
  let gates =
    List.mapi
      (fun i c ->
        let name = Printf.sprintf "sg%d_%dx%d" i c.leaves c.dep in
        Supergate.to_gate ~fusion:b.fusion ~name c.tree)
      reps
  in
  Metrics.Counter.add (Metrics.counter "superenum.considered") !considered_total;
  Metrics.Counter.add (Metrics.counter "superenum.emitted") (List.length gates);
  let stats =
    { considered = !considered_total;
      distinct_classes = Hashtbl.length table;
      emitted = List.length gates;
      seconds = Clock.now () -. t0 }
  in
  (gates, stats)
