open Dagmap_genlib

exception Format_error of string

type t = {
  base_name : string;
  base_fingerprint : string;
  bounds : Superenum.bounds;
  supergates : Gate.t list;
}

(* FNV-1a, 64-bit: tiny, dependency-free, and stable across runs and
   platforms — enough to catch truncation, bit rot and stale bases
   (this is an integrity check, not an authenticity one). *)
let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) prime)
    s;
  Printf.sprintf "%016Lx" !h

let fingerprint (lib : Libraries.t) =
  fnv64 (Genlib_parser.to_string lib.Libraries.gates)

let make ?bounds ?jobs (base : Libraries.t) =
  let supergates, stats = Superenum.generate ?bounds ?jobs base in
  let bounds = Option.value ~default:Superenum.default_bounds bounds in
  ( { base_name = base.Libraries.lib_name;
      base_fingerprint = fingerprint base;
      bounds;
      supergates },
    stats )

let to_string t =
  let b = t.bounds in
  let body =
    Printf.sprintf
      "SGLIB 1\nbase %s\nbase-fingerprint %s\n\
       bounds depth=%d pins=%d size=%d cap=%d fusion=%g classcap=%d\n\
       supergates %d\n%s"
      t.base_name t.base_fingerprint b.Superenum.depth b.Superenum.max_pins
      b.Superenum.max_size b.Superenum.max_gates b.Superenum.fusion
      b.Superenum.class_cap
      (List.length t.supergates)
      (Genlib_parser.to_string t.supergates)
  in
  body ^ Printf.sprintf "END %s\n" (fnv64 body)

let fail fmt = Printf.ksprintf (fun m -> raise (Format_error m)) fmt

let of_string s =
  (* Version first: a future format may change everything after the
     magic line (including the checksum), so it must be judged before
     anything else is interpreted. *)
  (match String.index_opt s '\n' with
   | None -> fail "not an SGLIB file (no header line)"
   | Some nl -> (
     match String.split_on_char ' ' (String.sub s 0 nl) with
     | [ "SGLIB"; "1" ] -> ()
     | [ "SGLIB"; v ] -> fail "unsupported SGLIB version %s (expected 1)" v
     | _ -> fail "not an SGLIB file (bad magic %S)" (String.sub s 0 nl)));
  (* Checksum next: everything up to and including the newline
     before the final END line is covered. *)
  let body, trailer =
    match
      let at = ref (-1) in
      String.iteri
        (fun i c ->
          if
            c = '\n'
            && i + 4 <= String.length s - 1
            && String.sub s (i + 1) 4 = "END "
          then at := i)
        s;
      !at
    with
    | -1 -> fail "missing END checksum line"
    | i -> (String.sub s 0 (i + 1), String.sub s (i + 1) (String.length s - i - 1))
  in
  (match String.split_on_char '\n' (String.trim trailer) with
   | [ line ] -> (
     match String.split_on_char ' ' line with
     | [ "END"; sum ] ->
       let actual = fnv64 body in
       if not (String.equal sum actual) then
         fail "checksum mismatch (file corrupted): stored %s, computed %s" sum
           actual
     | _ -> fail "malformed END line")
   | _ -> fail "trailing bytes after END line");
  let lines = String.split_on_char '\n' body in
  let header, rest =
    match lines with
    | version :: base :: fp :: bounds :: count :: rest ->
      ((version, base, fp, bounds, count), rest)
    | _ -> fail "truncated header"
  in
  let _version, base_line, fp_line, bounds_line, count_line = header in
  let base_name =
    match String.index_opt base_line ' ' with
    | Some i when String.sub base_line 0 i = "base" ->
      String.sub base_line (i + 1) (String.length base_line - i - 1)
    | _ -> fail "malformed base line %S" base_line
  in
  let base_fingerprint =
    try Scanf.sscanf fp_line "base-fingerprint %s" (fun x -> x)
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      fail "malformed base-fingerprint line %S" fp_line
  in
  let bounds =
    try
      Scanf.sscanf bounds_line
        "bounds depth=%d pins=%d size=%d cap=%d fusion=%f classcap=%d"
        (fun depth max_pins max_size max_gates fusion class_cap ->
          { Superenum.depth; max_pins; max_size; max_gates; fusion; class_cap })
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      fail "malformed bounds line %S" bounds_line
  in
  let count =
    try Scanf.sscanf count_line "supergates %d" (fun n -> n)
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      fail "malformed supergates line %S" count_line
  in
  let genlib_text = String.concat "\n" rest in
  let supergates =
    try
      List.map (Gate.with_origin Gate.Super)
        (Genlib_parser.parse_string ~file:"<sglib>" genlib_text)
    with Genlib_parser.Syntax_error _ as e ->
      fail "bad supergate genlib text: %s" (Genlib_parser.describe e)
  in
  if List.length supergates <> count then
    fail "supergate count mismatch: header says %d, parsed %d" count
      (List.length supergates);
  { base_name; base_fingerprint; bounds; supergates }

let write_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let augment ?(max_shapes = 8) (base : Libraries.t) t =
  let fp = fingerprint base in
  if not (String.equal fp t.base_fingerprint) then
    fail
      "stale supergate library: built from base %s (fingerprint %s), but \
       library %s has fingerprint %s — regenerate it"
      t.base_name t.base_fingerprint base.Libraries.lib_name fp;
  Libraries.make ~max_shapes
    (base.Libraries.lib_name ^ "+super")
    (base.Libraries.gates @ t.supergates)
