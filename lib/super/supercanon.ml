open Dagmap_logic

type memo = (int * string, string) Hashtbl.t

let create_memo () = Hashtbl.create 1024

(* Semi-canonical key for n = 6, where exact NPN (2^(n+1) n! tables)
   is too expensive per candidate. Output phase is normalized by
   minterm count (ties by lexicographic table order), then variables
   are sorted by a cofactor signature. This respects output negation
   and variable permutation but not input negation, and permutation
   only up to signature ties — so it may split one true NPN class
   into a few keys (never merges distinct classes). Over-splitting
   merely lets an occasional redundant supergate survive dedup; the
   per-class dominance pruning still applies within each key. Keys
   are prefixed with '~' so they can never collide with the exact
   canonical hex used for n <= 5. *)
let semi tt =
  let n = Truth.num_vars tt in
  let neg = Truth.lognot tt in
  let tt =
    let c1 = Truth.count_ones tt and c0 = Truth.count_ones neg in
    if c0 < c1 || (c0 = c1 && Truth.compare neg tt < 0) then neg else tt
  in
  let signature i =
    let cf1 = Truth.cofactor tt i true and cf0 = Truth.cofactor tt i false in
    ( Truth.count_ones cf1,
      Truth.count_ones cf0,
      Truth.to_hex cf1,
      Truth.to_hex cf0 )
  in
  let sigs = Array.init n signature in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare sigs.(a) sigs.(b) in
      if c <> 0 then c else compare a b)
    order;
  let perm = Array.make n 0 in
  Array.iteri (fun newpos old -> perm.(old) <- newpos) order;
  "~" ^ Truth.to_hex (Truth.permute tt perm)

let key memo tt =
  let n = Truth.num_vars tt in
  let hex = Truth.to_hex tt in
  match Hashtbl.find_opt memo (n, hex) with
  | Some k -> k
  | None ->
    let k =
      if n <= 5 then Truth.to_hex (fst (Npn.npn_canon tt))
      else if n = 6 then semi tt
      else invalid_arg "Supercanon.key: more than 6 variables"
    in
    Hashtbl.add memo (n, hex) k;
    k
