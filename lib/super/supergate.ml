open Dagmap_logic
open Dagmap_genlib

type tree = { gate : Gate.t; children : child array }
and child = Leaf | Sub of tree

let single gate = { gate; children = Array.make (Gate.num_pins gate) Leaf }

let rec leaves t =
  Array.fold_left
    (fun acc c -> acc + match c with Leaf -> 1 | Sub s -> leaves s)
    0 t.children

let rec size t =
  Array.fold_left
    (fun acc c -> acc + match c with Leaf -> 0 | Sub s -> size s)
    1 t.children

let rec depth t =
  1
  + Array.fold_left
      (fun acc c -> max acc (match c with Leaf -> 0 | Sub s -> depth s))
      0 t.children

let rec area t =
  Array.fold_left
    (fun acc c -> acc +. match c with Leaf -> 0.0 | Sub s -> area s)
    t.gate.Gate.area t.children

(* Composed formula over leaf variables, numbered left to right (the
   pin order of the fused gate). Substitution arrays are built before
   the map so a pin referenced twice in a gate formula (e.g. an XOR
   expansion) maps to the same subexpression. *)
let expr t =
  let next = ref 0 in
  let rec go t =
    let sub =
      Array.map
        (function
          | Leaf ->
            let v = Bexpr.var !next in
            incr next;
            v
          | Sub s -> go s)
        t.children
    in
    Bexpr.map_vars (fun i -> sub.(i)) t.gate.Gate.expr
  in
  go t

let func t = Bexpr.to_truth (leaves t) (expr t)

(* Delays round-trip through genlib text (%g, 6 significant digits);
   quantizing to 1e-4 makes written and reparsed gates identical. *)
let quantize d = Float.round (d *. 1e4) /. 1e4

let pin_delays ~fusion t =
  let rec go t =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun pin c ->
              let d = Gate.intrinsic_delay t.gate pin in
              match c with
              | Leaf -> [ d ]
              | Sub s -> List.map (fun cd -> d +. (fusion *. cd)) (go s))
            t.children))
  in
  List.map quantize (go t)

let max_delay ~fusion t =
  List.fold_left Float.max 0.0 (pin_delays ~fusion t)

let rec structure t =
  let parts =
    Array.to_list
      (Array.map (function Leaf -> "." | Sub s -> structure s) t.children)
  in
  t.gate.Gate.gate_name ^ "(" ^ String.concat "," parts ^ ")"

let to_gate ~fusion ~name t =
  let pins =
    Array.of_list
      (List.mapi
         (fun i d -> Gate.simple_pin ~delay:d (Printf.sprintf "p%d" i))
         (pin_delays ~fusion t))
  in
  Gate.make ~name ~area:(quantize (area t)) ~origin:Gate.Super ~pins (expr t)
