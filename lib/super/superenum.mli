(** Bounded enumeration of supergate compositions with NPN-canonical
    deduplication and delay-dominance pruning.

    Level by level ([d = 2 .. depth]), every usable library gate is
    tried as a root with each pin either a fresh leaf or a subtree —
    a single library gate or a surviving representative from a lower
    level — requiring at least one child of depth [d - 1] (so each
    level enumerates exactly the new-depth trees). Candidates are
    keyed by {!Supercanon.key}; within a class only the Pareto
    frontier on (max pin delay, area) survives, capped at
    [class_cap], and the class table is seeded with the base library
    gates so a supergate must beat (or area-complement) an existing
    cell to survive.

    The per-root fan-out runs across the persistent
    {!Dagmap_core.Parmap} domain pool: an atomic cursor hands root
    gates to workers, each worker keeps a private candidate list and
    {!Supercanon.memo}, and the merge sorts the concatenated lists by
    a total order (class key, delay, area, size, leaves, structure)
    — so the emitted gate list is byte-identical no matter how many
    domains enumerated it. *)

open Dagmap_genlib

type bounds = {
  depth : int;      (** max composition levels (>= 2) *)
  max_pins : int;   (** max leaves = pins of a supergate (2..6) *)
  max_size : int;   (** max member gates per supergate (>= 2) *)
  max_gates : int;  (** cap on emitted supergates *)
  fusion : float;   (** child-delay discount, in (0, 1]; see
                        {!Supergate} *)
  class_cap : int;  (** max supergates kept per NPN class (>= 1) *)
}

val default_bounds : bounds
(** depth 2, max_pins 5, max_size 4, max_gates 200, fusion 0.85,
    class_cap 2. *)

type stats = {
  considered : int;        (** composition trees examined *)
  distinct_classes : int;  (** NPN classes seen (incl. base gates) *)
  emitted : int;           (** supergates returned *)
  seconds : float;
      (** monotonic wall-clock enumeration time
          ({!Dagmap_obs.Clock.now}) *)
}

val generate :
  ?bounds:bounds -> ?jobs:int -> Libraries.t -> Gate.t list * stats
(** Enumerate the supergates of a library. [jobs] (default 1) is the
    number of domains. The gate list (names, order, pin delays,
    formulas) is a deterministic function of the library and bounds
    alone; [stats.considered] is likewise deterministic, only
    [seconds] varies. Raises [Invalid_argument] on out-of-range
    bounds. *)
