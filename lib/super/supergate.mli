(** Supergates: composition trees of library gates, fused into single
    genlib gates.

    A supergate is a rooted tree whose internal nodes are library
    gates and whose dangling pins are the leaves — the pins of the
    fused gate, numbered left to right. Fusing composes the gate
    formulas and the pin-to-output delays; the result is an ordinary
    {!Dagmap_genlib.Gate.t} (tagged {!Dagmap_genlib.Gate.Super}), so
    the matcher, match database and mapper consume supergates with no
    changes to the labeling algorithm.

    {b Delay model.} A leaf's delay through the fused gate is
    [root pin delay + fusion * (delay through the subtree)] with
    [fusion <= 1.0]: a fused composition is cheaper than cascading
    the same cells as separate instances, because fusion removes the
    inter-cell interconnect/buffering overhead that each cell's block
    delay budgets for. This mirrors the repo's 44-3-style library,
    whose wide complex gates are faster than the equivalent cascade
    of its 44-1 cells. With [fusion = 1.0] composition is purely
    additive and a supergate can never beat the DP chaining the same
    gates — the discount is what gives supergate libraries their
    delay advantage. *)

open Dagmap_logic
open Dagmap_genlib

type tree = { gate : Gate.t; children : child array }
and child = Leaf | Sub of tree
(** [children] has one entry per pin of [gate]. *)

val single : Gate.t -> tree
(** The one-gate tree (every pin a leaf). *)

val leaves : tree -> int
(** Number of leaves = pins of the fused gate. *)

val size : tree -> int
(** Number of library gates in the tree. *)

val depth : tree -> int
(** Levels of gates ([single] has depth 1). *)

val area : tree -> float
(** Sum of the member gates' areas. *)

val expr : tree -> Bexpr.t
(** Composed formula over leaf indices (left-to-right order). *)

val func : tree -> Truth.t
(** Truth table of {!expr} over [leaves t] variables. *)

val pin_delays : fusion:float -> tree -> float list
(** Per-leaf fused delay (left-to-right), each quantized to [1e-4]
    so gates round-trip exactly through genlib text. *)

val max_delay : fusion:float -> tree -> float
(** Max over {!pin_delays}. *)

val structure : tree -> string
(** Structural key, e.g. ["nand2(inv(.),.)"]  — injective on trees,
    used as the final deterministic tiebreak. *)

val to_gate : fusion:float -> name:string -> tree -> Gate.t
(** Fuse into a gate: pins [p0..pk] with {!pin_delays}, area
    {!area} (quantized), formula {!expr}, origin
    {!Dagmap_genlib.Gate.Super}. *)

val quantize : float -> float
(** Round to [1e-4] (the genlib round-trip grid). *)
