(** NPN-canonical keys for supergate deduplication.

    For up to 5 variables the key is the exact NPN-canonical truth
    table ({!Dagmap_logic.Npn.npn_canon}, cost [2^(n+1) n!] — fine at
    this arity). For 6 variables a cheap {e semi-canonical} key is
    used: output phase normalized by minterm count, variables sorted
    by cofactor signatures, result prefixed ["~"]. The semi key never
    merges functions from different NPN classes; it may split one
    class into several keys, which only weakens deduplication (an
    occasional redundant supergate survives), never correctness.

    Keys are memoized per worker: enumeration produces the same raw
    truth table many times through different compositions. *)

open Dagmap_logic

type memo
(** Per-worker memo table (not thread-safe — one per domain). *)

val create_memo : unit -> memo

val key : memo -> Truth.t -> string
(** Canonical key of a function of at most 6 variables. Raises
    [Invalid_argument] beyond 6. *)
