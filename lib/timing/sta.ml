open Dagmap_genlib
open Dagmap_core

type path_element = {
  pe_instance : int;
  pe_gate : string;
  pe_through_pin : int;
  pe_arrival : float;
}

type report = {
  arrival : float array;
  required : float array;
  slack : float array;
  worst_delay : float;
  critical_output : string;
  critical_path : path_element list;
}

(* Depth-first with an explicit stack: netlists can be chains of
   10^5+ instances (the test suite drives one), far past the limit of
   a recursive visit. Each entry carries a phase bit: pre-visit
   pushes the post-visit entry then the unvisited fanins, so an
   instance lands in the order only after all its fanins. *)
let topological nl =
  let n = Array.length nl.Netlist.instances in
  let state = Array.make n 0 in
  let order = ref [] in
  let stack = Stack.create () in
  for root = 0 to n - 1 do
    if state.(root) = 0 then begin
      Stack.push (root, false) stack;
      while not (Stack.is_empty stack) do
        let i, post = Stack.pop stack in
        if post then begin
          state.(i) <- 2;
          order := i :: !order
        end
        else if state.(i) = 0 then begin
          state.(i) <- 1;
          Stack.push (i, true) stack;
          Array.iter
            (function
              | Netlist.D_gate j when state.(j) = 0 ->
                Stack.push (j, false) stack
              | Netlist.D_gate _ | Netlist.D_pi _ | Netlist.D_const _ -> ())
            nl.Netlist.instances.(i).Netlist.inputs
        end
      done
    end
  done;
  List.rev !order

let analyze ?required_time nl =
  let n = Array.length nl.Netlist.instances in
  let order = topological nl in
  let arrival = Array.make n 0.0 in
  (* Arrival pass, remembering each instance's critical input pin. *)
  let critical_pin = Array.make n (-1) in
  List.iter
    (fun i ->
      let inst = nl.Netlist.instances.(i) in
      Array.iteri
        (fun pin d ->
          let input_arrival =
            match d with
            | Netlist.D_pi _ | Netlist.D_const _ -> 0.0
            | Netlist.D_gate j -> arrival.(j)
          in
          let a = input_arrival +. Gate.intrinsic_delay inst.Netlist.gate pin in
          if a > arrival.(i) then begin
            arrival.(i) <- a;
            critical_pin.(i) <- pin
          end)
        inst.Netlist.inputs)
    order;
  let output_arrival = function
    | Netlist.D_pi _ | Netlist.D_const _ -> 0.0
    | Netlist.D_gate j -> arrival.(j)
  in
  let worst_delay, critical_output =
    List.fold_left
      (fun (wd, wo) (name, d) ->
        let a = output_arrival d in
        if a > wd then (a, name) else (wd, wo))
      (0.0, "<none>") nl.Netlist.outputs
  in
  let rt = Option.value ~default:worst_delay required_time in
  (* Required pass in reverse topological order. *)
  let required = Array.make n infinity in
  List.iter
    (fun (_, d) ->
      match d with
      | Netlist.D_gate j -> required.(j) <- Float.min required.(j) rt
      | Netlist.D_pi _ | Netlist.D_const _ -> ())
    nl.Netlist.outputs;
  List.iter
    (fun i ->
      let inst = nl.Netlist.instances.(i) in
      Array.iteri
        (fun pin d ->
          match d with
          | Netlist.D_gate j ->
            required.(j) <-
              Float.min required.(j)
                (required.(i) -. Gate.intrinsic_delay inst.Netlist.gate pin)
          | Netlist.D_pi _ | Netlist.D_const _ -> ())
        inst.Netlist.inputs)
    (List.rev order);
  let slack = Array.init n (fun i -> required.(i) -. arrival.(i)) in
  (* Critical path: walk back from the worst output through critical
     pins. *)
  let critical_path =
    let rec walk acc d =
      match d with
      | Netlist.D_pi _ | Netlist.D_const _ -> acc
      | Netlist.D_gate j ->
        let inst = nl.Netlist.instances.(j) in
        let pin = critical_pin.(j) in
        let element =
          { pe_instance = j;
            pe_gate = inst.Netlist.gate.Gate.gate_name;
            pe_through_pin = pin;
            pe_arrival = arrival.(j) }
        in
        if pin < 0 then element :: acc
        else walk (element :: acc) inst.Netlist.inputs.(pin)
    in
    let worst_driver =
      List.fold_left
        (fun best (_, d) ->
          match best with
          | Some (a, _) when output_arrival d <= a -> best
          | _ -> Some (output_arrival d, d))
        None nl.Netlist.outputs
    in
    match worst_driver with None -> [] | Some (_, d) -> walk [] d
  in
  { arrival; required; slack; worst_delay; critical_output; critical_path }

let num_critical report threshold =
  Array.fold_left
    (fun acc s -> if s < threshold then acc + 1 else acc)
    0 report.slack

let pp_path ppf report =
  Format.fprintf ppf "critical output %s, delay %.2f@\n" report.critical_output
    report.worst_delay;
  List.iter
    (fun pe ->
      Format.fprintf ppf "  inst %d %-12s via pin %d  arrival %.2f@\n"
        pe.pe_instance pe.pe_gate pe.pe_through_pin pe.pe_arrival)
    report.critical_path
