open Dagmap_logic

exception
  Syntax_error of {
    file : string option;
    line : int;
    col : int;
    message : string;
  }

let describe = function
  | Syntax_error { file; line; col; message } ->
    Printf.sprintf "%s:%d:%d: %s"
      (Option.value file ~default:"<genlib>")
      line col message
  | _ -> invalid_arg "Genlib_parser.describe"

type pos = { line : int; col : int }

type token = { text : string; pos : pos }

(* Tokenize: strip comments, split GATE statements on ';', keep PIN
   lines word-wise. The grammar is line-oriented enough that a simple
   word scanner suffices; formulas are re-parsed by Bexpr.parse.
   Every token remembers the 1-based line/column of its first
   character so errors can point at the offending input. *)
let tokenize source =
  let tokens = ref [] in
  let buf = Buffer.create 32 in
  let line = ref 1 in
  let col = ref 1 in
  let tok_pos = ref { line = 1; col = 1 } in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := { text = Buffer.contents buf; pos = !tok_pos } :: !tokens;
      Buffer.clear buf
    end
  in
  let in_comment = ref false in
  String.iter
    (fun c ->
      (match c with
       | '\n' ->
         flush ();
         in_comment := false
       | _ when !in_comment -> ()
       | '#' ->
         flush ();
         in_comment := true
       | ' ' | '\t' | '\r' -> flush ()
       | ';' ->
         flush ();
         tokens := { text = ";"; pos = { line = !line; col = !col } } :: !tokens
       | c ->
         if Buffer.length buf = 0 then tok_pos := { line = !line; col = !col };
         Buffer.add_char buf c);
      if c = '\n' then begin
        incr line;
        col := 1
      end
      else incr col)
    source;
  flush ();
  List.rev !tokens

let error ?file pos fmt =
  Printf.ksprintf
    (fun message ->
      raise (Syntax_error { file; line = pos.line; col = pos.col; message }))
    fmt

let float_of_token ?file t =
  match float_of_string_opt t.text with
  | Some f -> f
  | None -> error ?file t.pos "expected a number, got %S" t.text

let phase_of_token ?file t =
  match t.text with
  | "INV" -> Gate.Inv
  | "NONINV" -> Gate.Noninv
  | "UNKNOWN" -> Gate.Unknown
  | s -> error ?file t.pos "expected INV/NONINV/UNKNOWN, got %S" s

(* One PIN clause: 8 fields after the keyword. *)
let parse_pin ?file pos rest =
  match rest with
  | name :: ph :: il :: ml :: rb :: rf :: fb :: ff :: tail ->
    let pin =
      { Gate.pin_name = name.text;
        phase = phase_of_token ?file ph;
        input_load = float_of_token ?file il;
        max_load = float_of_token ?file ml;
        rise_block = float_of_token ?file rb;
        rise_fanout = float_of_token ?file rf;
        fall_block = float_of_token ?file fb;
        fall_fanout = float_of_token ?file ff }
    in
    (pin, tail)
  | _ -> error ?file pos "truncated PIN clause"

(* Collect formula tokens up to ';' (formulas may contain spaces). *)
let rec take_until_semi acc = function
  | [] -> (List.rev acc, [])
  | { text = ";"; _ } :: rest -> (List.rev acc, rest)
  | t :: rest -> take_until_semi (t :: acc) rest

let split_equation ?file pos tokens =
  let text = String.concat " " (List.map (fun t -> t.text) tokens) in
  let pos = match tokens with t :: _ -> t.pos | [] -> pos in
  match String.index_opt text '=' with
  | None -> error ?file pos "expected <output>=<formula> in GATE statement"
  | Some i ->
    let output = String.trim (String.sub text 0 i) in
    let formula = String.sub text (i + 1) (String.length text - i - 1) in
    if String.equal output "" then error ?file pos "empty output name";
    (output, formula)

let rec parse_statements ?file acc tokens =
  match tokens with
  | [] -> List.rev acc
  | { text = "GATE"; pos } :: rest -> begin
    match rest with
    | name :: area :: more ->
      let equation_tokens, after = take_until_semi [] more in
      let output_name, formula = split_equation ?file pos equation_tokens in
      let pin_names = ref [] in
      let expr =
        try Bexpr.parse ~pin_names formula
        with Bexpr.Parse_error m ->
          error ?file name.pos "bad formula for %s: %s" name.text m
      in
      let pins, after = parse_pins ?file pos [] after in
      let pins = assign_pins ?file name.pos name.text !pin_names pins in
      let gate =
        try
          Gate.make ~name:name.text ~area:(float_of_token ?file area)
            ~output_name ~pins expr
        with Invalid_argument m -> error ?file name.pos "%s" m
      in
      parse_statements ?file (gate :: acc) after
    | _ -> error ?file pos "truncated GATE statement"
  end
  | { text = "LATCH"; pos } :: rest ->
    (* Skip the LATCH statement and its trailing clauses. *)
    let _, after = take_until_semi [] rest in
    let after = skip_latch_clauses pos after in
    parse_statements ?file acc after
  | { text; pos } :: _ -> error ?file pos "unexpected token %S" text

and parse_pins ?file pos acc tokens =
  match tokens with
  | { text = "PIN"; pos = pl } :: rest ->
    let pin, after = parse_pin ?file pl rest in
    parse_pins ?file pos (pin :: acc) after
  | _ -> (List.rev acc, tokens)

and skip_latch_clauses pos tokens =
  match tokens with
  | { text = "PIN" | "SEQ" | "CONTROL" | "CONSTRAINT"; _ } :: rest ->
    (* Each clause is fixed-arity except we just drop words until the
       next keyword; clause words never collide with keywords. *)
    let rec drop = function
      | ({ text = "PIN" | "SEQ" | "CONTROL" | "CONSTRAINT" | "GATE" | "LATCH"; _ }
         :: _) as l ->
        l
      | [] -> []
      | _ :: rest -> drop rest
    in
    skip_latch_clauses pos (drop rest)
  | _ -> tokens

(* Distribute parsed PIN clauses over the formula's pins: a clause
   whose name matches applies to that pin; a "*" clause applies to all
   pins without an explicit clause. *)
and assign_pins ?file pos gate_name pin_names clauses =
  let star =
    List.find_opt (fun p -> String.equal p.Gate.pin_name "*") clauses
  in
  let lookup name =
    match
      List.find_opt (fun p -> String.equal p.Gate.pin_name name) clauses
    with
    | Some p -> { p with Gate.pin_name = name }
    | None -> begin
      match star with
      | Some p -> { p with Gate.pin_name = name }
      | None ->
        if clauses = [] then Gate.simple_pin name
        else error ?file pos "gate %s: no PIN clause for input %s" gate_name name
    end
  in
  Array.of_list (List.map lookup pin_names)

let parse_string ?file source = parse_statements ?file [] (tokenize source)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  parse_string ~file:path source

let to_string gates =
  String.concat "\n" (List.map Gate.to_genlib_string gates) ^ "\n"
