(** Library gates in the style of MCNC [genlib].

    A gate has a name, an area, a single output computed by a Boolean
    formula over its input pins, and per-pin timing data. Following
    the paper (footnote 4) the delay model is load-independent: only
    the block (intrinsic) delays are used by the mappers; the
    load-dependent coefficients are carried for completeness. *)

open Dagmap_logic

type phase = Inv | Noninv | Unknown

type origin = Library | Super
(** Where the gate comes from: an ordinary library cell, or a
    generated supergate (a fused composition of library cells, see
    {!module:Dagmap_super}). The mappers treat both identically; the
    tag only feeds usage statistics. *)

type pin = {
  pin_name : string;
  phase : phase;
  input_load : float;
  max_load : float;
  rise_block : float;
  rise_fanout : float;
  fall_block : float;
  fall_fanout : float;
}

type t = private {
  gate_name : string;
  area : float;
  output_name : string;
  expr : Bexpr.t;          (** over pin indices *)
  pins : pin array;
  func : Truth.t;          (** over pin indices *)
  origin : origin;
}

val make :
  name:string ->
  area:float ->
  ?output_name:string ->
  ?origin:origin ->
  pins:pin array ->
  Bexpr.t ->
  t
(** Build a gate; the expression's variables must be within the pin
    array. Raises [Invalid_argument] otherwise. [origin] defaults to
    {!Library}. *)

val with_origin : origin -> t -> t
(** Retag a gate (genlib text carries no origin, so supergate library
    files retag after parsing). *)

val is_super : t -> bool

val simple_pin : ?delay:float -> ?load:float -> string -> pin
(** A pin whose rise and fall block delays both equal [delay]
    (default 1.0) with unit input load and no fanout coefficient. *)

val num_pins : t -> int

val intrinsic_delay : t -> int -> float
(** Worst (max of rise/fall) block delay from pin [i] to the output. *)

val max_intrinsic_delay : t -> float
(** Max over all pins. *)

val is_inverter : t -> bool
val is_buffer : t -> bool
val is_constant : t -> bool option
(** [Some b] when the gate output is the constant [b]. *)

val pp : Format.formatter -> t -> unit
(** Genlib-syntax rendering ([GATE] line plus [PIN] lines). *)

val to_genlib_string : t -> string
