open Dagmap_logic

type phase = Inv | Noninv | Unknown

type origin = Library | Super

type pin = {
  pin_name : string;
  phase : phase;
  input_load : float;
  max_load : float;
  rise_block : float;
  rise_fanout : float;
  fall_block : float;
  fall_fanout : float;
}

type t = {
  gate_name : string;
  area : float;
  output_name : string;
  expr : Bexpr.t;
  pins : pin array;
  func : Truth.t;
  origin : origin;
}

let make ~name ~area ?(output_name = "O") ?(origin = Library) ~pins expr =
  if Bexpr.num_vars expr > Array.length pins then
    invalid_arg
      (Printf.sprintf "Gate.make %s: formula references pin %d but only %d pins"
         name (Bexpr.num_vars expr - 1) (Array.length pins));
  if Array.length pins > Truth.max_vars then
    invalid_arg (Printf.sprintf "Gate.make %s: too many pins" name);
  let func = Bexpr.to_truth (Array.length pins) expr in
  { gate_name = name; area; output_name; expr; pins; func; origin }

let with_origin origin g = { g with origin }

let is_super g = g.origin = Super

let simple_pin ?(delay = 1.0) ?(load = 1.0) pin_name =
  { pin_name; phase = Unknown; input_load = load; max_load = 999.0;
    rise_block = delay; rise_fanout = 0.0; fall_block = delay;
    fall_fanout = 0.0 }

let num_pins g = Array.length g.pins

let intrinsic_delay g i =
  let p = g.pins.(i) in
  Float.max p.rise_block p.fall_block

let max_intrinsic_delay g =
  let d = ref 0.0 in
  for i = 0 to num_pins g - 1 do
    d := Float.max !d (intrinsic_delay g i)
  done;
  !d

let is_inverter g =
  num_pins g = 1 && Truth.equal g.func (Truth.lognot (Truth.var 1 0))

let is_buffer g = num_pins g = 1 && Truth.equal g.func (Truth.var 1 0)

let is_constant g = Truth.is_const g.func

let pp ppf g =
  let names i = g.pins.(i).pin_name in
  Format.fprintf ppf "GATE %s %g %s=%s;" g.gate_name g.area g.output_name
    (Bexpr.to_string ~names g.expr);
  Array.iter
    (fun p ->
      let phase =
        match p.phase with Inv -> "INV" | Noninv -> "NONINV" | Unknown -> "UNKNOWN"
      in
      Format.fprintf ppf "@\nPIN %s %s %g %g %g %g %g %g" p.pin_name phase
        p.input_load p.max_load p.rise_block p.rise_fanout p.fall_block
        p.fall_fanout)
    g.pins

let to_genlib_string g = Format.asprintf "%a" pp g
