(** Parser for the MCNC [genlib] standard-cell library format.

    Supported syntax (per the SIS manual):
    {v
    GATE <name> <area> <output>=<formula>;
    PIN <pin-name|*> <phase> <input-load> <max-load>
        <rise-block> <rise-fanout> <fall-block> <fall-fanout>
    v}
    [#] starts a comment to end of line. [LATCH] blocks and their
    [SEQ]/[CONTROL]/[CONSTRAINT] lines are recognized and skipped
    (this reproduction maps combinational logic; latches are handled
    structurally by the retiming layer). A [PIN *] line applies to
    all formula inputs. *)

exception
  Syntax_error of {
    file : string option;  (** [None] when parsing an in-memory string *)
    line : int;            (** 1-based *)
    col : int;             (** 1-based column of the offending token *)
    message : string;
  }

val describe : exn -> string
(** Render a {!Syntax_error} as ["file:line:col: message"] (the file
    defaults to ["<genlib>"]). Raises [Invalid_argument] on any other
    exception. *)

val parse_string : ?file:string -> string -> Gate.t list
(** Parse genlib source text. Raises {!Syntax_error}; [file] only
    labels error messages. *)

val parse_file : string -> Gate.t list
(** Like {!parse_string}, with errors carrying the file name. *)

val to_string : Gate.t list -> string
(** Render a library back to genlib syntax. *)
